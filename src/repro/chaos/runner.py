"""Schedule-driven chaos execution over the simulated cluster.

:class:`ChaosRunner` stands up a primary + replicas shard group — the
*unmodified* :mod:`repro.cluster` server stack — on simulated time
(:class:`~repro.chaos.clock.SimEventLoop`), a simulated network
(:class:`~repro.chaos.network.SimNetwork`), and fault-tracking storage
(:class:`~repro.chaos.storage.FaultyStorage`), then drives it through a
:class:`~repro.chaos.schedule.Schedule`: client ops interleaved with
node crashes (torn WAL tails included), partitions, connection resets,
snapshot/compaction points, and fsync failures.

Truth comes from the primary's own WAL: at quiescent checkpoints the
runner folds newly-durable records into a scalar-kernel *oracle* filter
with exactly the replay semantics of
:func:`repro.cluster.node.recover_node`.  At the end of the run (heal
everything, restart everything, wait for replication to converge) it
asserts:

- **no acked loss** — every acknowledged mutation has a durable WAL
  record behind it;
- **membership** — every key with positive folded count queries True
  on the primary and on every replica (no false negatives);
- **byte-identity** — the primary's snapshot payload equals the
  oracle's, and every replica's equals the primary's.

Fsync topology: the primary runs ``fsync=batch`` (an ack implies the
record is on stable storage — :class:`FilterExecutor` syncs before the
reply) and crashes are quiesced through the shared worker, so a
primary crash never tears acked history.  Replicas run ``fsync=never``,
so *their* crashes richly exercise torn tails, WAL re-streaming, and
full state transfers — without ever putting a replica ahead of the
primary's durable log, which is what keeps byte-identity checkable.

``run_seed`` is the CLI/CI entry point: generate → run → on failure,
ddmin-shrink the fault events and report the minimal failing schedule.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import random
import shutil
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.chaos.clock import SimClock, SimEventLoop
from repro.chaos.network import SimNetwork
from repro.chaos.schedule import Schedule, shrink_schedule
from repro.chaos.storage import FaultyStorage
from repro.cluster.node import build_node_server, recover_node
from repro.errors import ReproError
from repro.filters.factory import FilterSpec, build_filter
from repro.service.client import AsyncFilterClient
from repro.service.protocol import Opcode, ProtocolError, RemoteError
from repro.service.snapshot import _split_trailer, snapshot_bytes

__all__ = ["ChaosRunner", "run_seed"]

#: Sim-time budget per client op (covers reconnect backoff + quorum wait).
_OP_TIMEOUT_S = 10.0
#: Sim-time budget for end-of-run replication convergence.
_CONVERGE_TIMEOUT_S = 120.0
#: Small segments so schedules exercise rotation and compaction.
_SEGMENT_BYTES = 4096

#: Filter under test: small MPCBF so states stay cheap to snapshot.
_SPEC = FilterSpec(
    variant="MPCBF-2",
    memory_bits=65536,
    k=4,
    word_bits=64,
    capacity=2048,
    seed=1,
    extra={"word_overflow": "saturate"},
)
#: The oracle folds WAL records on the scalar kernel — serialisation is
#: kernel-independent, so byte-identity is a cross-kernel differential
#: check as well as a loss check.
_ORACLE_SPEC = FilterSpec(
    variant=_SPEC.variant,
    memory_bits=_SPEC.memory_bits,
    k=_SPEC.k,
    word_bits=_SPEC.word_bits,
    capacity=_SPEC.capacity,
    seed=_SPEC.seed,
    extra={**_SPEC.extra, "kernel": "scalar"},
)

_INSERT_OPS = (Opcode.INSERT, Opcode.BULK64_INSERT)


def _payload(filt) -> bytes:
    """Serialised filter state with the integrity trailer stripped."""
    return _split_trailer(snapshot_bytes(filt))[0]


class _Node:
    """One simulated cluster member (its durable state survives crashes)."""

    def __init__(self, index: int, base: Path, net: SimNetwork, seed: int):
        self.index = index
        self.name = f"n{index}"
        self.host = self.name
        self.port = 1
        self.wal_dir = base / self.name / "wal"
        self.snapshot_path = base / self.name / "snap.mpcs"
        self.storage = FaultyStorage()
        self.transport = net.endpoint(self.name)
        self.rng = random.Random(f"{seed}:node:{index}")
        self.server = None  # None while crashed
        self.is_primary = index == 0
        self.fsync = "batch" if self.is_primary else "never"


class ChaosRunner:
    """Execute one :class:`Schedule` and report invariant violations."""

    def __init__(self, schedule: Schedule) -> None:
        self.schedule = schedule
        self.clock = SimClock()
        self.net = SimNetwork(default_delay_s=0.001)
        self.fault_rng = random.Random(f"{schedule.seed}:faults")
        self.violations: list[str] = []
        self.counters: collections.Counter = collections.Counter()
        #: Acked mutation multiset: (kind, key bytes) → count.
        self.acked: collections.Counter = collections.Counter()
        #: Durable WAL record multiset, same keying, from oracle folds.
        self.wal_records: collections.Counter = collections.Counter()
        #: Folded truth: key bytes → net count after error-skipping replay.
        self.true_counts: collections.Counter = collections.Counter()
        self.oracle = build_filter(_ORACLE_SPEC)
        self.oracle_seq = 0
        self.nodes: list[_Node] = []
        self.executor: ThreadPoolExecutor | None = None
        self.loop: SimEventLoop | None = None

    # -- entry point ------------------------------------------------------
    def run(self) -> dict:
        """Run the schedule to completion; returns the report dict."""
        base = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-chaos"
        )
        self.loop = SimEventLoop(self.clock)
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self._main(base))
        finally:
            try:
                self._cancel_leftovers()
            finally:
                asyncio.set_event_loop(None)
                self.loop.close()
                self.executor.shutdown(wait=True)
                shutil.rmtree(base, ignore_errors=True)
        return self._report()

    def _cancel_leftovers(self) -> None:
        """Tear down background tasks (replication links, handlers)."""
        pending = asyncio.all_tasks(self.loop)
        for task in pending:
            task.cancel()
        if pending:
            self.loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )

    def _report(self) -> dict:
        return {
            "seed": self.schedule.seed,
            "steps": self.schedule.steps,
            "nodes": self.schedule.nodes,
            "schedule_digest": self.schedule.digest(),
            "events": len(self.schedule.events),
            "final_seq": self.oracle_seq,
            "counters": dict(sorted(self.counters.items())),
            "violations": list(self.violations),
            "ok": not self.violations,
        }

    # -- cluster lifecycle ------------------------------------------------
    async def _main(self, base: Path) -> None:
        sched = self.schedule
        self.nodes = [
            _Node(i, base, self.net, sched.seed) for i in range(sched.nodes)
        ]
        for node in self.nodes:
            await self._start_node(node)
        client = AsyncFilterClient(
            host=self.nodes[0].host,
            port=self.nodes[0].port,
            retries=6,
            backoff_s=0.02,
            transport=self.net.endpoint("client"),
            rng=random.Random(f"{sched.seed}:client"),
        )
        events_at = collections.defaultdict(list)
        for event in sched.events:
            events_at[event.step].append(event)
        try:
            for step, (kind, key) in enumerate(sched.ops):
                for event in events_at.get(step, ()):
                    await self._apply_event(event, client)
                await self._do_op(client, kind, key)
            await self._finale(client)
        finally:
            with contextlib.suppress(Exception):
                await client.close()
            for node in self.nodes:
                if node.server is not None:
                    with contextlib.suppress(Exception):
                        await node.server.abort()

    async def _start_node(self, node: _Node) -> None:
        replicas = (
            [(peer.host, peer.port) for peer in self.nodes[1:]]
            if node.is_primary
            else None
        )
        ack_mode = "quorum" if (replicas and len(self.nodes) > 1) else "async"
        recovery = recover_node(
            lambda: build_filter(_SPEC),
            wal_dir=node.wal_dir,
            snapshot_path=node.snapshot_path,
            segment_bytes=_SEGMENT_BYTES,
            fsync=node.fsync,
            storage=node.storage,
        )
        server = build_node_server(
            recovery,
            host=node.host,
            port=node.port,
            replicas=replicas,
            ack_mode=ack_mode,
            read_only=not node.is_primary,
            snapshot_path=node.snapshot_path,
            snapshot_interval_s=None,
            max_batch=64,
            quorum_timeout_s=1.0,
            transport=node.transport,
            executor=self.executor,
            storage=node.storage,
            rng=node.rng,
        )
        await server.start()
        node.server = server

    async def _crash_node(self, node: _Node) -> None:
        """Quiesced crash-stop: abort, drain the worker, tear the disk."""
        if node.server is None:
            return
        self.counters["crashes"] += 1
        server, node.server = node.server, None
        await server.abort()
        # Barrier on the shared worker: the in-flight batch (including
        # its fsync) has finished before we touch the files, so the cut
        # points are a pure function of the schedule.
        await self.loop.run_in_executor(self.executor, lambda: None)
        if server.wal is not None:
            server.wal.abandon()
        torn = node.storage.crash(self.fault_rng)
        self.counters["files_torn"] += len(torn)
        self.net.reset_endpoint(node.name)

    # -- fault events ------------------------------------------------------
    async def _apply_event(self, event, client) -> None:
        """Fire one schedule event; invalid-in-context events are no-ops
        (that tolerance is what makes ddmin subsets executable)."""
        n = len(self.nodes)
        if event.kind == "crash":
            await self._crash_node(self.nodes[event.arg("node") % n])
        elif event.kind == "restart":
            node = self.nodes[event.arg("node") % n]
            if node.server is None:
                await self._start_node(node)
        elif event.kind == "partition":
            a, b = event.arg("a") % n, event.arg("b") % n
            if a != b:
                self.counters["partitions"] += 1
                self.net.partition(f"n{a}", f"n{b}")
        elif event.kind == "heal":
            self.net.heal(f"n{event.arg('a') % n}", f"n{event.arg('b') % n}")
        elif event.kind == "reset":
            self.counters["resets"] += self.net.reset_endpoint(
                f"n{event.arg('node') % n}"
            )
        elif event.kind == "snapshot":
            await self._snapshot_primary()
        elif event.kind == "fsync_fail":
            node = self.nodes[event.arg("node") % n]
            # A primary WAL-fsync failure could let replicas get ahead
            # of the primary's durable log (divergence by design, not a
            # bug) — so the primary takes snapshot-fsync faults and
            # replicas take WAL-fsync faults.
            node.storage.fail_fsyncs(
                "snap" if node.is_primary else "wal-", count=1
            )
            self.counters["fsync_faults"] += 1

    # -- client ops --------------------------------------------------------
    async def _do_op(self, client, kind: str, key: str) -> None:
        self.counters["ops"] += 1
        try:
            if kind == "insert":
                await asyncio.wait_for(client.insert(key), _OP_TIMEOUT_S)
            elif kind == "delete":
                await asyncio.wait_for(client.delete(key), _OP_TIMEOUT_S)
            else:
                await asyncio.wait_for(client.query(key), _OP_TIMEOUT_S)
                self.counters["queries"] += 1
                return
        except RemoteError:
            # A clean rejection (delete underflow, quorum timeout): the
            # op may or may not have applied; the WAL fold decides.
            self.counters["rejected"] += 1
            return
        except asyncio.TimeoutError:
            # wait_for cancelled the call mid-frame; the stream is
            # desynchronised — never reuse it.
            await client.close()
            self.counters["indeterminate"] += 1
            return
        except (ConnectionError, ProtocolError, OSError):
            await client.close()
            self.counters["indeterminate"] += 1
            return
        self.counters["acked"] += 1
        self.acked[(kind, key.encode("utf-8"))] += 1

    # -- oracle ------------------------------------------------------------
    def _fold_oracle(self, through_seq: int) -> None:
        """Apply newly-durable primary WAL records to the oracle.

        Mirrors :func:`repro.cluster.node.recover_node` replay semantics:
        per-record :class:`ReproError` failures are skipped (the live
        apply hit the same error against the same state).
        """
        wal = self.nodes[0].server.wal
        for record in wal.replay(start_seq=self.oracle_seq + 1):
            if record.seq > through_seq:
                break
            insert_like = record.op in _INSERT_OPS
            keys = record.keys
            if not isinstance(keys, np.ndarray):
                keys = list(keys)
            try:
                if insert_like:
                    self.oracle.insert_many(keys)
                else:
                    self.oracle.delete_many(keys)
                applied = True
            except ReproError:
                applied = False
            kind = "insert" if insert_like else "delete"
            for key in record.keys:
                if isinstance(key, bytes):
                    self.wal_records[(kind, key)] += 1
                    if applied:
                        self.true_counts[key] += 1 if insert_like else -1
            self.oracle_seq = record.seq
        self.oracle_seq = max(self.oracle_seq, through_seq)

    async def _checkpoint(self) -> int:
        """Quiesce the primary's WAL and fold the oracle up to it."""
        server = self.nodes[0].server
        wal = server.wal

        def sync_and_seq() -> int:
            wal.sync()
            return wal.last_seq

        seq = await server.batcher.run(sync_and_seq)
        self._fold_oracle(seq)
        return seq

    async def _snapshot_primary(self) -> None:
        """Snapshot + compact the primary (oracle folded first, so
        compaction can never drop records the fold still needs)."""
        server = self.nodes[0].server if self.nodes else None
        if server is None:
            return
        await self._checkpoint()
        try:
            await server.batcher.run(server.snapshots.save_now)
            self.counters["snapshots"] += 1
        except (OSError, ReproError):
            # An injected snapshot-fsync fault; the atomic-rename path
            # leaves the previous snapshot intact.
            self.counters["snapshot_failures"] += 1

    # -- end of run --------------------------------------------------------
    async def _finale(self, client) -> None:
        self.net.heal_all()
        for node in self.nodes:
            if node.server is None:
                await self._start_node(node)
        primary = self.nodes[0]
        target = primary.server.wal.last_seq
        deadline = self.loop.time() + _CONVERGE_TIMEOUT_S
        while True:
            behind = [
                node.name
                for node in self.nodes[1:]
                if node.server.wal.last_seq < target
            ]
            if not behind:
                break
            if self.loop.time() > deadline:
                self.violations.append(
                    f"convergence timeout: {behind} behind seq {target}"
                )
                return
            await asyncio.sleep(0.25)
        # Every replica's last record has fully applied once its WAL
        # reaches the target (append and apply share the worker call);
        # one barrier makes that visible to this thread.
        await self.loop.run_in_executor(self.executor, lambda: None)
        await self._checkpoint()
        self._check_invariants()

    def _check_invariants(self) -> None:
        # 1. Zero acked loss: every acked mutation has a durable record.
        for (kind, key), count in sorted(self.acked.items()):
            durable = self.wal_records[(kind, key)]
            if durable < count:
                self.violations.append(
                    f"acked loss: {count} acked {kind}({key!r}) but only "
                    f"{durable} durable WAL records"
                )
        # 2. Membership: no false negatives against the folded truth.
        primary = self.nodes[0]
        for key, count in sorted(self.true_counts.items()):
            if count <= 0:
                continue
            for node in self.nodes:
                if not node.server.filter.query(key):
                    self.violations.append(
                        f"false negative on {node.name}: {key!r} has net "
                        f"count {count} but queries False"
                    )
        # 3. Byte-identity: primary state == oracle fold of its own WAL.
        primary_payload = _payload(primary.server.filter)
        if primary_payload != _payload(self.oracle):
            self.violations.append(
                "primary state diverges from the WAL-fold oracle "
                "(byte-identity)"
            )
        # 4. Replica byte-identity after convergence.
        for node in self.nodes[1:]:
            if _payload(node.server.filter) != primary_payload:
                self.violations.append(
                    f"replica {node.name} state diverges from primary "
                    f"(byte-identity)"
                )


def run_seed(
    seed: int,
    *,
    steps: int = 120,
    nodes: int = 3,
    shrink: bool = True,
    max_shrink_tests: int = 24,
) -> dict:
    """Generate, run, and (on failure) minimise one seed's schedule.

    Returns the run report; a failing run gains ``minimal_schedule``
    (canonical JSON) and ``minimal_events`` describing the smallest
    fault-event subset that still reproduces a violation.
    """
    schedule = Schedule.generate(seed, steps, nodes)
    report = ChaosRunner(schedule).run()
    if report["ok"] or not shrink:
        return report

    def still_failing(candidate: Schedule) -> bool:
        return not ChaosRunner(candidate).run()["ok"]

    minimal = shrink_schedule(
        schedule, still_failing, max_tests=max_shrink_tests
    )
    report["minimal_schedule"] = minimal.to_json()
    report["minimal_events"] = [e.to_obj() for e in minimal.events]
    report["minimal_digest"] = minimal.digest()
    return report
