"""Tests for the tuple-space packet classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.classifier import ClassifyResult, Rule, TupleSpaceClassifier
from repro.errors import ConfigurationError
from repro.filters.cbf import CountingBloomFilter
from repro.filters.mpcbf import MPCBF


def cbf_factory(tuple_key):
    return CountingBloomFilter(2048, 3, seed=hash(tuple_key) & 0xFFFF)


def mpcbf_factory(tuple_key):
    return MPCBF(
        128, 64, 3, n_max=10, seed=hash(tuple_key) & 0xFFFF,
        word_overflow="saturate",
    )


def _addr(a, b, c, d):
    return (a << 24) | (b << 16) | (c << 8) | d


@pytest.fixture
def classifier():
    clf = TupleSpaceClassifier(cbf_factory)
    # (10.0.0.0/8 -> any): allow, priority 10
    clf.add_rule(Rule(10, 8, 0, 0, "allow", priority=10))
    # (10.1.0.0/16 -> 192.168.0.0/16): drop, priority 1
    clf.add_rule(
        Rule((10 << 8) | 1, 16, (192 << 8) | 168, 16, "drop", priority=1)
    )
    # (any -> 8.8.8.8/32): dns, priority 5
    clf.add_rule(
        Rule(0, 0, _addr(8, 8, 8, 8), 32, "dns", priority=5)
    )
    return clf


class TestClassification:
    def test_priority_wins(self, classifier):
        result = classifier.classify(
            _addr(10, 1, 2, 3), _addr(192, 168, 7, 7)
        )
        assert result.action == "drop"  # priority 1 beats "allow" (10)

    def test_single_match(self, classifier):
        result = classifier.classify(_addr(10, 9, 9, 9), _addr(1, 2, 3, 4))
        assert result.action == "allow"

    def test_wildcard_source(self, classifier):
        result = classifier.classify(_addr(99, 0, 0, 1), _addr(8, 8, 8, 8))
        assert result.action == "dns"

    def test_no_match(self, classifier):
        result = classifier.classify(_addr(99, 0, 0, 1), _addr(99, 0, 0, 2))
        assert not result.matched
        assert result.action is None

    def test_tuples_counted(self, classifier):
        assert classifier.num_tuples == 3
        assert classifier.num_rules == 3
        result = classifier.classify(_addr(10, 1, 1, 1), _addr(9, 9, 9, 9))
        assert result.tuples_probed == 3

    def test_filters_skip_exact_probes(self, classifier):
        # A miss on every tuple should cost zero exact probes (modulo
        # filter false positives, which these sizes make negligible).
        classifier.exact_probes = 0
        classifier.classify(_addr(77, 1, 1, 1), _addr(66, 2, 2, 2))
        assert classifier.exact_probes == 0


class TestRuleMaintenance:
    def test_remove_rule(self, classifier):
        rule = Rule(10, 8, 0, 0, "allow", priority=10)
        classifier.remove_rule(rule)
        result = classifier.classify(_addr(10, 9, 9, 9), _addr(1, 2, 3, 4))
        assert not result.matched
        # Counting filter cleaned up: no false probe either.
        assert result.exact_probes == 0

    def test_remove_missing_rule(self, classifier):
        with pytest.raises(KeyError):
            classifier.remove_rule(Rule(77, 8, 0, 0, "x"))

    def test_duplicate_rule_rejected(self, classifier):
        with pytest.raises(ConfigurationError):
            classifier.add_rule(Rule(10, 8, 0, 0, "allow", priority=10))

    def test_same_key_different_priority_allowed(self, classifier):
        classifier.add_rule(Rule(10, 8, 0, 0, "log", priority=0))
        result = classifier.classify(_addr(10, 9, 9, 9), _addr(1, 2, 3, 4))
        assert result.action == "log"

    def test_invalid_rule(self):
        clf = TupleSpaceClassifier(cbf_factory)
        with pytest.raises(ConfigurationError):
            clf.add_rule(Rule(1 << 9, 8, 0, 0, "x"))
        with pytest.raises(ConfigurationError):
            clf.add_rule(Rule(0, 40, 0, 0, "x"))

    def test_invalid_address(self, classifier):
        with pytest.raises(ConfigurationError):
            classifier.classify(1 << 33, 0)


class TestAtScale:
    def test_bulk_ruleset_with_mpcbf(self):
        rng = np.random.default_rng(3)
        clf = TupleSpaceClassifier(mpcbf_factory)
        rules = []
        for i in range(400):
            src_len = int(rng.choice([8, 16, 24]))
            dst_len = int(rng.choice([0, 16]))
            rule = Rule(
                int(rng.integers(0, 1 << src_len)),
                src_len,
                int(rng.integers(0, 1 << dst_len)) if dst_len else 0,
                dst_len,
                f"act-{i}",
                priority=i,
            )
            try:
                clf.add_rule(rule)
            except ConfigurationError:
                continue  # rare duplicate
            rules.append(rule)
        # Every installed rule must be findable by a covered packet.
        hits = 0
        for rule in rules[:150]:
            src = (rule.src << (32 - rule.src_len)) if rule.src_len else 12345
            dst = (rule.dst << (32 - rule.dst_len)) if rule.dst_len else 54321
            result = clf.classify(src, dst)
            assert result.matched
            hits += result.rule.matches(src, dst)
        assert hits == 150

    def test_churned_ruleset_stays_clean(self):
        clf = TupleSpaceClassifier(cbf_factory)
        rules = [
            Rule(i, 16, 0, 0, f"a{i}", priority=i) for i in range(200)
        ]
        for rule in rules:
            clf.add_rule(rule)
        for rule in rules[::2]:
            clf.remove_rule(rule)
        assert clf.num_rules == 100
        # Removed rules: no match, and (counting filters) no false probes.
        clf.exact_probes = clf.false_probes = 0
        for rule in rules[::2][:50]:
            result = clf.classify(rule.src << 16, 999)
            assert not result.matched
        assert clf.false_probes == 0
