"""Tests for the Spectral Bloom Filter extension baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)
from repro.filters.spectral import SpectralBloomFilter


def make(num_counters=4096, k=3, seed=1, **kw) -> SpectralBloomFilter:
    return SpectralBloomFilter(num_counters, k, seed=seed, **kw)


class TestSpectralBasics:
    def test_cycle(self, small_keys):
        sbf = make()
        for key in small_keys:
            sbf.insert(key)
        assert all(sbf.query(key) for key in small_keys)
        for key in small_keys:
            sbf.delete(key)
        assert not any(sbf.query(key) for key in small_keys)

    def test_count_exact_when_sparse(self):
        sbf = make()
        for multiplicity, key in [(1, "a"), (3, "b"), (7, "c")]:
            for _ in range(multiplicity):
                sbf.insert(key)
        assert sbf.count("a") == 1
        assert sbf.count("b") == 3
        assert sbf.count("c") == 7
        assert sbf.count("absent") == 0

    def test_plain_minimum_never_underestimates(self, rng):
        # Minimum selection is a strict upper bound; RM trades that
        # guarantee for accuracy (rare small underestimates possible),
        # so the hard bound is asserted on the plain estimator.
        sbf = make(num_counters=512, recurring_minimum=False)
        keys = [f"k{i}" for i in range(200)]
        truth = {}
        for key in keys:
            reps = int(rng.integers(1, 5))
            truth[key] = reps
            for _ in range(reps):
                sbf.insert(key)
        for key, expected in truth.items():
            assert sbf.count(key) >= expected

    def test_recurring_minimum_improves_estimates(self, rng):
        # At moderate load (where only collided keys divert — the
        # regime SBF targets), RM's total absolute error is at most the
        # plain minimum estimator's.  At extreme loads nearly every key
        # diverts and the small secondary itself collides, so RM loses
        # its edge — which is the original paper's own caveat.
        keys = [f"k{i}" for i in range(300)]
        reps = {k: int(rng.integers(1, 6)) for k in keys}
        plain = make(num_counters=4096, recurring_minimum=False, seed=3)
        rm = make(num_counters=4096, recurring_minimum=True, seed=3)
        for key, n in reps.items():
            for _ in range(n):
                plain.insert(key)
                rm.insert(key)
        err_plain = sum(abs(plain.count(k) - n) for k, n in reps.items())
        err_rm = sum(abs(rm.count(k) - n) for k, n in reps.items())
        assert err_rm <= err_plain

    def test_bulk_query_matches_scalar(self, small_keys, negative_keys):
        sbf = make()
        for key in small_keys:
            sbf.insert(key)
        bulk = sbf.query_many(negative_keys[:300])
        scalar = np.array([sbf.query_encoded(int(k)) for k in negative_keys[:300]])
        np.testing.assert_array_equal(bulk, scalar)


class TestSpectralErrors:
    def test_underflow(self):
        with pytest.raises(CounterUnderflowError):
            make().delete("ghost")

    def test_overflow(self):
        sbf = make(num_counters=64, k=1, counter_bits=2)
        for _ in range(3):
            sbf.insert("same")
        with pytest.raises(CounterOverflowError):
            sbf.insert("same")

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            SpectralBloomFilter(2, 3)

    def test_total_bits_includes_secondary(self):
        with_rm = make(num_counters=1024, counter_bits=8)
        without = make(num_counters=1024, counter_bits=8, recurring_minimum=False)
        assert with_rm.total_bits == (1024 + 256) * 8
        assert without.total_bits == 1024 * 8

    def test_stats_track_secondary_accesses(self):
        sbf = make(num_counters=64, seed=5)  # collisions → secondary use
        for i in range(60):
            sbf.insert(f"x{i}")
        assert sbf.stats.insert.mean_accesses >= 3.0
