"""Executable documentation: every fenced ``python`` block must run.

Hand-written docs rot the moment the API moves under them; the fix is
to execute them.  This module extracts every fenced ```python block
from README.md and docs/*.md and runs each one in a fresh namespace
(cwd moved to a tmp dir so snippets may write files freely).  A block
that genuinely cannot run standalone — e.g. it talks to a live daemon —
opts out by placing ``<!-- no-test -->`` on one of the two lines above
the fence; opted-out blocks still show up in the test report as
skipped, so the escape hatch stays visible instead of silent.

``bash`` fences are opt-*in*: a block whose two context lines carry
``<!-- test-cli -->`` has each of its ``repro ...`` command lines run
through :func:`repro.cli.main` in-process (cwd in a tmp dir), asserting
exit code 0 — so the runbook's copy-pasteable commands are exercised,
not just typeset.  Comment lines and blank lines are ignored; any other
line in a marked block is an error (marked blocks must be pure
``repro`` command sequences).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

NO_TEST_MARKER = "<!-- no-test -->"
TEST_CLI_MARKER = "<!-- test-cli -->"


@dataclasses.dataclass
class Snippet:
    path: Path
    lineno: int  # 1-based line of the opening fence
    code: str
    skipped: bool
    kind: str = "python"  # "python" | "cli"

    @property
    def test_id(self) -> str:
        return f"{self.path.relative_to(ROOT)}:{self.lineno}"


def extract_snippets(path: Path) -> list[Snippet]:
    lines = path.read_text(encoding="utf-8").splitlines()
    snippets: list[Snippet] = []
    inside = None  # None | "python" | "cli"
    start = 0
    block: list[str] = []
    for index, line in enumerate(lines):
        stripped = line.strip()
        if inside is None and stripped.startswith("```"):
            context = lines[max(0, index - 2) : index]
            if stripped.startswith("```python"):
                inside = "python"
            elif stripped.startswith(("```bash", "```sh", "```console")) and any(
                TEST_CLI_MARKER in c for c in context
            ):
                inside = "cli"
            else:
                continue
            start = index
            block = []
        elif inside is not None and stripped == "```":
            context = lines[max(0, start - 2) : start]
            skipped = inside == "python" and any(
                NO_TEST_MARKER in c for c in context
            )
            snippets.append(
                Snippet(
                    path=path,
                    lineno=start + 1,
                    code="\n".join(block) + "\n",
                    skipped=skipped,
                    kind=inside,
                )
            )
            inside = None
        elif inside is not None:
            block.append(line)
    if inside is not None:
        raise AssertionError(
            f"{path}: unterminated ```{inside} fence at line {start + 1}"
        )
    return snippets


def documented_files() -> list[Path]:
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def all_snippets() -> list[Snippet]:
    out: list[Snippet] = []
    for path in documented_files():
        out.extend(extract_snippets(path))
    return out


SNIPPETS = all_snippets()


def test_docs_contain_executable_snippets():
    """The extraction itself must find something — an empty parametrize
    below would silently pass if the fence syntax drifted."""
    assert len(SNIPPETS) >= 3
    assert any(not s.skipped for s in SNIPPETS)


@pytest.mark.parametrize(
    "snippet",
    [
        pytest.param(
            snippet,
            id=snippet.test_id,
            marks=[pytest.mark.skip(reason=NO_TEST_MARKER)] if snippet.skipped else [],
        )
        for snippet in SNIPPETS
    ],
)
def test_doc_snippet_executes(snippet: Snippet, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # snippets may write files; keep the repo clean
    if snippet.kind == "cli":
        _run_cli_snippet(snippet)
        return
    code = compile(snippet.code, str(snippet.test_id), "exec")
    namespace: dict = {"__name__": "__doc_snippet__"}
    exec(code, namespace)  # noqa: S102 - executing our own documentation


def _run_cli_snippet(snippet: Snippet) -> None:
    """Run each ``repro ...`` line of a ``<!-- test-cli -->`` block."""
    import shlex

    from repro.cli import main as cli_main

    # Fold "\"-continued lines first, so wrapped commands stay one command.
    folded: list[str] = []
    for raw in snippet.code.splitlines():
        if folded and folded[-1].endswith("\\"):
            folded[-1] = folded[-1][:-1].rstrip() + " " + raw.strip()
        else:
            folded.append(raw.strip())
    commands = []
    for line in folded:
        if not line or line.startswith("#"):
            continue
        assert line.startswith("repro "), (
            f"{snippet.test_id}: test-cli blocks may only contain `repro` "
            f"commands, got {line!r}"
        )
        commands.append(line)
    assert commands, f"{snippet.test_id}: test-cli block has no commands"
    for command in commands:
        exit_code = cli_main(shlex.split(command)[1:])
        assert exit_code == 0, f"{snippet.test_id}: {command!r} exited {exit_code}"
