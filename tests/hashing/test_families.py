"""Tests for hash families: ranges, determinism, scalar/bulk agreement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.hashing.families import (
    HashFamily,
    PartitionedHashFamily,
    split_k_over_g,
)


class TestSplitKOverG:
    @pytest.mark.parametrize(
        "k,g,expected",
        [
            (3, 1, (3,)),
            (3, 2, (2, 1)),
            (4, 2, (2, 2)),
            (5, 2, (3, 2)),
            (5, 3, (2, 2, 1)),
            (7, 3, (3, 3, 1)),
            (1, 1, (1,)),
        ],
    )
    def test_paper_allocations(self, k, g, expected):
        assert split_k_over_g(k, g) == expected

    @given(st.integers(1, 16), st.integers(1, 16))
    def test_sums_to_k_and_every_word_nonempty(self, k, g):
        if g > k:
            with pytest.raises(ConfigurationError):
                split_k_over_g(k, g)
            return
        counts = split_k_over_g(k, g)
        assert sum(counts) == k
        assert len(counts) == g
        assert all(c >= 1 for c in counts)
        # Front-loaded: non-increasing.
        assert all(counts[i] >= counts[i + 1] for i in range(g - 1))

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            split_k_over_g(0, 1)


class TestHashFamily:
    def test_indices_in_range(self):
        fam = HashFamily(97, 5, seed=3)
        for key in range(100):
            idx = fam.indices(key)
            assert len(idx) == 5
            assert all(0 <= i < 97 for i in idx)

    def test_deterministic_per_seed(self):
        a = HashFamily(1000, 3, seed=1)
        b = HashFamily(1000, 3, seed=1)
        c = HashFamily(1000, 3, seed=2)
        assert a.indices(42) == b.indices(42)
        assert a.indices(42) != c.indices(42)

    def test_bulk_matches_scalar(self):
        fam = HashFamily(12345, 4, seed=9)
        keys = np.arange(500, dtype=np.uint64) * np.uint64(0x9E3779B9)
        matrix = fam.indices_array(keys)
        assert matrix.shape == (500, 4)
        for i in (0, 100, 499):
            assert list(matrix[i]) == fam.indices(int(keys[i]))

    def test_double_hashing_bulk_matches_scalar(self):
        fam = HashFamily(12345, 6, seed=9, mode="double")
        keys = np.arange(200, dtype=np.uint64) + np.uint64(17)
        matrix = fam.indices_array(keys)
        for i in (0, 99, 199):
            assert list(matrix[i]) == fam.indices(int(keys[i]))

    def test_double_hashing_uniformity(self):
        fam = HashFamily(64, 4, seed=0, mode="double")
        keys = np.arange(20_000, dtype=np.uint64)
        counts = np.bincount(
            fam.indices_array(keys).reshape(-1), minlength=64
        )
        assert counts.min() > 0.8 * counts.mean()

    def test_uniformity(self):
        fam = HashFamily(50, 3, seed=0)
        keys = np.arange(30_000, dtype=np.uint64)
        counts = np.bincount(fam.indices_array(keys).reshape(-1), minlength=50)
        # Each bucket expects 1800; allow generous slack.
        assert counts.min() > 1500
        assert counts.max() < 2100

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            HashFamily(0, 3)
        with pytest.raises(ConfigurationError):
            HashFamily(10, 0)
        with pytest.raises(ConfigurationError):
            HashFamily(10, 2, mode="nope")


class TestPartitionedHashFamily:
    def _family(self, **kw) -> PartitionedHashFamily:
        defaults = dict(num_words=256, offset_range=40, k=3, g=1, seed=5)
        defaults.update(kw)
        return PartitionedHashFamily(**defaults)

    def test_ranges(self):
        fam = self._family(g=2, k=5)
        for key in range(200):
            words = fam.word_indices(key)
            offs = fam.offsets(key)
            assert len(words) == 2 and len(offs) == 5
            assert all(0 <= w < 256 for w in words)
            assert all(0 <= o < 40 for o in offs)

    def test_grouped_offsets_partition(self):
        fam = self._family(g=2, k=5)
        flat = fam.offsets(77)
        groups = fam.grouped_offsets(77)
        assert [o for grp in groups for o in grp] == flat
        assert [len(g_) for g_ in groups] == list(fam.k_per_word)

    def test_bulk_matches_scalar(self):
        fam = self._family(g=3, k=7, num_words=1024, offset_range=53)
        keys = (np.arange(300, dtype=np.uint64) + 1) * np.uint64(2654435761)
        word_idx, offsets = fam.locate_array(keys)
        assert word_idx.shape == (300, 3)
        assert offsets.shape == (300, 7)
        for i in (0, 150, 299):
            assert list(word_idx[i]) == fam.word_indices(int(keys[i]))
            assert list(offsets[i]) == fam.offsets(int(keys[i]))

    def test_word_and_offset_array_views(self):
        fam = self._family(g=2, k=4)
        keys = np.arange(50, dtype=np.uint64)
        np.testing.assert_array_equal(
            fam.word_indices_array(keys), fam.locate_array(keys)[0]
        )
        np.testing.assert_array_equal(
            fam.offsets_array(keys), fam.locate_array(keys)[1]
        )

    def test_offset_word_columns(self):
        fam = self._family(g=2, k=5)  # split (3, 2)
        cols = fam.offset_word_columns()
        assert list(cols) == [0, 0, 0, 1, 1]

    def test_word_uniformity(self):
        fam = self._family(num_words=64)
        keys = np.arange(30_000, dtype=np.uint64)
        counts = np.bincount(
            fam.word_indices_array(keys).reshape(-1), minlength=64
        )
        assert counts.min() > 0.8 * counts.mean()

    def test_first_word_independent_of_offset_value(self):
        # Word 0 shares a mix with offset 0 but must remain uniform and
        # weakly correlated: over many keys, every (offset0, word0 mod 8)
        # cell is populated.
        fam = self._family(num_words=8, offset_range=8)
        keys = np.arange(50_000, dtype=np.uint64)
        word_idx, offsets = fam.locate_array(keys)
        joint = np.zeros((8, 8), dtype=int)
        np.add.at(joint, (offsets[:, 0], word_idx[:, 0]), 1)
        assert joint.min() > 0.5 * joint.mean()

    @settings(max_examples=50)
    @given(st.integers(0, 2**64 - 1))
    def test_scalar_bulk_agreement_property(self, key):
        fam = self._family(g=2, k=4)
        word_idx, offsets = fam.locate_array(np.array([key], dtype=np.uint64))
        assert list(word_idx[0]) == fam.word_indices(key)
        assert list(offsets[0]) == fam.offsets(key)

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            PartitionedHashFamily(0, 10, 3)
        with pytest.raises(ConfigurationError):
            PartitionedHashFamily(10, 0, 3)
        with pytest.raises(ConfigurationError):
            PartitionedHashFamily(10, 10, 2, g=3)
