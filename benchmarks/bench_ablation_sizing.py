"""Ablation: Eq. 11 safe n_max vs average-case sizing + saturate.

Wraps :func:`repro.bench.ablations.ablation_sizing`; quantifies the
FPR/saturation trade behind Table IV's insert-only sizing.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.ablations import ablation_sizing


def test_ablation_sizing(benchmark, scale, capsys):
    report = run_once(benchmark, ablation_sizing, scale)
    with capsys.disabled():
        print()
        print(report.render())
    tight = report.rows[0]
    # At ~10 bits/key the average-case layout must beat the safe one.
    if tight["safe fpr"] == tight["safe fpr"]:  # not NaN
        assert tight["average fpr"] < tight["safe fpr"]
