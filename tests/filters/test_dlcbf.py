"""Tests for the d-left CBF extension baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    CounterUnderflowError,
)
from repro.filters.dlcbf import DLeftCBF


def make(**kw) -> DLeftCBF:
    defaults = dict(num_buckets=128, d=4, cells_per_bucket=8, seed=1)
    defaults.update(kw)
    return DLeftCBF(**defaults)


class TestDLeftCBF:
    def test_cycle(self, small_keys):
        f = make()
        for key in small_keys:
            f.insert(key)
        assert all(f.query(key) for key in small_keys)
        for key in small_keys:
            f.delete(key)
        assert not any(f.query(key) for key in small_keys)

    def test_count(self):
        f = make()
        for _ in range(3):
            f.insert("dup")
        assert f.count("dup") == 3
        f.delete("dup")
        assert f.count("dup") == 2

    def test_count_absent(self):
        f = make()
        assert f.count("nothing") == 0

    def test_load_tracks_distinct_fingerprints(self, small_keys):
        f = make()
        for key in small_keys:
            f.insert(key)
        assert f.load <= len(small_keys)
        assert f.load > 0.9 * len(small_keys)  # few fingerprint collisions

    def test_duplicate_insert_does_not_grow_load(self):
        f = make()
        f.insert("same")
        load = f.load
        f.insert("same")
        assert f.load == load

    def test_delete_absent_raises(self):
        f = make()
        with pytest.raises(CounterUnderflowError):
            f.delete("ghost")

    def test_balanced_loads(self, rng):
        # d-left hashing keeps bucket loads tight around the mean.
        f = make(num_buckets=64, d=4, cells_per_bucket=8)
        keys = rng.integers(1, 2**62, size=1200).astype(np.uint64)
        for key in keys:
            f.insert_encoded(int(key))
        loads = (f._fingerprints != 0).sum(axis=2)
        assert loads.max() - loads.min() <= 4

    def test_capacity_error_when_buckets_full(self):
        f = DLeftCBF(1, d=1, cells_per_bucket=2, seed=0)
        f.insert("a")
        f.insert("b")
        # Third distinct fingerprint cannot fit anywhere.
        with pytest.raises(CapacityError):
            for i in range(10):
                f.insert(f"x{i}")

    def test_bulk_query_matches_scalar(self, small_keys, negative_keys):
        f = make()
        for key in small_keys:
            f.insert(key)
        bulk = f.query_many(negative_keys[:500])
        scalar = np.array([f.query_encoded(int(k)) for k in negative_keys[:500]])
        np.testing.assert_array_equal(bulk, scalar)

    def test_fpr_scales_with_fingerprint_bits(self, rng):
        members = rng.integers(1, 2**62, size=2000).astype(np.uint64)
        negatives = (
            rng.integers(1, 2**62, size=100_000).astype(np.uint64)
            | np.uint64(1 << 63)
        )
        small = DLeftCBF(256, fingerprint_bits=8, seed=2)
        large = DLeftCBF(256, fingerprint_bits=16, seed=2)
        for f in (small, large):
            for key in members:
                f.insert_encoded(int(key))
        assert (
            large.query_many(negatives).mean()
            < small.query_many(negatives).mean()
        )

    def test_total_bits(self):
        f = DLeftCBF(100, d=2, cells_per_bucket=4, fingerprint_bits=10, counter_bits=2)
        assert f.total_bits == 2 * 100 * 4 * 12

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            DLeftCBF(0)
        with pytest.raises(ConfigurationError):
            DLeftCBF(10, fingerprint_bits=31)
