"""Asyncio TCP daemon serving a filter (or sharded bank) over the wire.

Architecture::

    client conns ──frames──▶ per-connection handler
                                  │  (parse, time, frame responses)
                                  ▼
                            MicroBatcher queue ──▶ single worker thread
                                  │                  bulk_insert/bulk_query
                                  ▼                  on the hosted filter
                            coalesced batches

Every connection handler is an asyncio task; key-carrying requests all
funnel through one :class:`~repro.service.batching.MicroBatcher`, so
concurrency across connections is precisely what feeds the coalescer.
Control ops (PING/STATS/SNAPSHOT) bypass the batch queue but reads of
filter state still serialise onto the worker thread.

Shutdown is graceful by design: ``stop()`` (wired to SIGTERM/SIGINT by
:func:`serve`) stops accepting, lets in-flight requests drain through
the batcher, writes a final snapshot when one is configured, and only
then closes.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import time

from repro.errors import ReproError
from repro.observability.httpd import ObservabilityHTTPServer
from repro.observability.logging import get_logger, new_request_id
from repro.observability.prometheus import render_metrics
from repro.observability.spans import span
from repro.service.batching import FilterExecutor, MicroBatcher
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    Opcode,
    ProtocolError,
    encode_error_body,
    encode_frame,
    error_code_for,
    pack_bools,
    parse_request,
    read_frame,
)
from repro.service.snapshot import SnapshotManager

__all__ = ["FilterServer", "serve"]

logger = get_logger("service.server")


class FilterServer:
    """TCP front-end for one filter instance.

    Parameters
    ----------
    filt:
        Any :class:`~repro.filters.base.FilterBase` or
        :class:`~repro.parallel.ShardedFilterBank`.
    host, port:
        Bind address; port 0 picks an ephemeral port (read it back from
        ``server.port`` after :meth:`start` — tests do).
    max_batch, max_delay_us:
        Coalescer bounds, see :class:`~repro.service.batching.MicroBatcher`.
    fuse_mutations:
        Fuse INSERT/DELETE batches across requests (see
        :class:`~repro.service.batching.FilterExecutor`).
    snapshot_path, snapshot_interval_s:
        Enable on-demand (and optionally periodic) snapshots.
    metrics_port:
        When not None, serve ``/metrics`` (Prometheus text exposition)
        and ``/healthz`` over HTTP on this port (0 picks an ephemeral
        port, read back from ``.metrics_port`` after :meth:`start`).
    """

    def __init__(
        self,
        filt,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 512,
        max_delay_us: float = 200.0,
        fuse_mutations: bool = False,
        snapshot_path: str | None = None,
        snapshot_interval_s: float | None = None,
        metrics_port: int | None = None,
    ) -> None:
        self.filter = filt
        self.host = host
        self.port = port
        self.metrics = ServiceMetrics()
        self.executor = FilterExecutor(filt, fuse_mutations=fuse_mutations)
        self.batcher = MicroBatcher(
            self.executor.apply,
            max_batch=max_batch,
            max_delay_us=max_delay_us,
            metrics=self.metrics,
        )
        self.snapshots = (
            SnapshotManager(
                filt,
                snapshot_path,
                interval_s=snapshot_interval_s,
                metrics=self.metrics,
            )
            if snapshot_path
            else None
        )
        self.metrics_port = metrics_port
        self.metrics_http = (
            ObservabilityHTTPServer(
                self._render_metrics,
                self._health,
                host=host,
                port=metrics_port,
            )
            if metrics_port is not None
            else None
        )
        self._draining = False
        self._server: asyncio.base_events.Server | None = None
        self._stopped = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # -- observability ---------------------------------------------------
    def _render_metrics(self) -> str:
        return render_metrics(self.metrics, self.filter, self.snapshots)

    def _health(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "filter": getattr(self.filter, "name", type(self.filter).__name__),
            "uptime_s": round(
                time.monotonic() - self.metrics.started_at, 3
            ),
            "connections_active": self.metrics.connections_active,
        }

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind, start the coalescer, metrics endpoint, and snapshots."""
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_http is not None:
            await self.metrics_http.start()
            self.metrics_port = self.metrics_http.port
        if self.snapshots is not None:
            self.snapshots.start_periodic(self.batcher.run)
        logger.info(
            "server_started",
            extra={
                "filter": getattr(self.filter, "name", None),
                "host": self.host,
                "port": self.port,
                "metrics_port": self.metrics_port,
            },
        )

    async def stop(self) -> None:
        """Graceful drain: close listener, finish in-flight requests,
        flush the batcher, write a final snapshot."""
        self._draining = True  # /healthz flips to 503 while we drain
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Kick idle connections off their blocking reads; handlers that
        # are mid-request finish writing their response first.
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self.snapshots is not None:
            await self.snapshots.stop()
        await self.batcher.stop()
        if self.snapshots is not None:
            self.snapshots.save_now()
        # The metrics endpoint outlives the drain so operators can watch
        # it happen; it is the last thing to go dark.
        if self.metrics_http is not None:
            await self.metrics_http.stop()
        logger.info("server_stopped", extra={"port": self.port})
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # -- connection handling --------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections_opened += 1
        self.metrics.connections_active += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    # Framing is broken; answer once and hang up.
                    await self._send_error(writer, exc)
                    break
                if frame is None:
                    break
                opcode, body = frame
                request_id = new_request_id()
                self.metrics.bytes_in += len(body) + 6
                started = time.perf_counter()
                try:
                    response = await self._dispatch(opcode, body, request_id)
                except ProtocolError as exc:
                    # Bad body in a well-framed request: answer, carry on.
                    response = self._error_frame(exc, request_id)
                except ReproError as exc:
                    response = self._error_frame(exc, request_id)
                latency_us = (time.perf_counter() - started) * 1e6
                self.metrics.record_op(opcode.name, latency_us)
                self.metrics.bytes_out += len(response)
                if logger.isEnabledFor(logging.DEBUG):
                    logger.debug(
                        "request",
                        extra={
                            "request_id": request_id,
                            "op": opcode.name,
                            "latency_us": round(latency_us, 1),
                            "bytes_in": len(body) + 6,
                            "bytes_out": len(response),
                        },
                    )
                writer.write(response)
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            self.metrics.connections_active -= 1
            self._writers.discard(writer)
            if task is not None:
                self._connections.discard(task)
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _dispatch(
        self, opcode: Opcode, body: bytes, request_id: str | None = None
    ) -> bytes:
        if opcode == Opcode.PING:
            return encode_frame(Opcode.OK)
        if opcode == Opcode.STATS:
            report = await self.batcher.run(
                lambda: self.metrics.snapshot(self.filter)
            )
            return encode_frame(
                Opcode.JSON, json.dumps(report).encode("utf-8")
            )
        if opcode == Opcode.SNAPSHOT:
            if self.snapshots is None:
                raise ProtocolError("server has no snapshot path configured")
            report = await self.snapshots.save(self.batcher.run)
            self.metrics.snapshots_written += 1
            return encode_frame(
                Opcode.JSON, json.dumps(report).encode("utf-8")
            )
        with span("protocol_decode", self.metrics):
            request = parse_request(opcode, body)
        result = await self.batcher.submit(
            request.op, request.keys, request_id=request_id
        )
        if request.op == Opcode.QUERY:
            if request.single:
                return encode_frame(Opcode.BOOL, bytes([int(result[0])]))
            return encode_frame(Opcode.BITMAP, pack_bools(result))
        return encode_frame(Opcode.OK)

    def _error_frame(self, exc: Exception, request_id: str | None = None) -> bytes:
        code = error_code_for(exc)
        self.metrics.record_error(code.name)
        logger.info(
            "request_error",
            extra={
                "request_id": request_id,
                "code": code.name,
                "error": str(exc),
            },
        )
        return encode_frame(Opcode.ERROR, encode_error_body(code, str(exc)))

    async def _send_error(
        self, writer: asyncio.StreamWriter, exc: Exception
    ) -> None:
        with contextlib.suppress(ConnectionError):
            writer.write(self._error_frame(exc))
            await writer.drain()


async def serve(
    filt,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = 512,
    max_delay_us: float = 200.0,
    fuse_mutations: bool = False,
    snapshot_path: str | None = None,
    snapshot_interval_s: float | None = None,
    metrics_port: int | None = None,
    ready: asyncio.Event | None = None,
    install_signal_handlers: bool = True,
) -> None:
    """Run a :class:`FilterServer` until SIGTERM/SIGINT, then drain.

    ``ready`` (if given) is set once the port is bound — callers that
    embed the daemon (tests, benchmarks) use it instead of polling.
    """
    server = FilterServer(
        filt,
        host=host,
        port=port,
        max_batch=max_batch,
        max_delay_us=max_delay_us,
        fuse_mutations=fuse_mutations,
        snapshot_path=snapshot_path,
        snapshot_interval_s=snapshot_interval_s,
        metrics_port=metrics_port,
    )
    await server.start()
    stop_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signal_handlers:
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stop_requested.set)
    print(
        f"repro service: {server.filter.name} listening on "
        f"{server.host}:{server.port}",
        flush=True,
    )
    if server.metrics_http is not None:
        print(
            f"repro service: metrics on "
            f"http://{server.host}:{server.metrics_port}/metrics",
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        await stop_requested.wait()
    finally:
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError):
                    loop.remove_signal_handler(sig)
        await server.stop()
    print("repro service: drained and stopped", flush=True)
