"""Unit tests for ring epochs, their log, and move computation."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError, ConfigurationError
from repro.rebalance.epochs import (
    EpochLog,
    KeyRange,
    KeyRangeSet,
    RingEpoch,
    compute_moves,
    hash_key,
)
from repro.cluster.router import NodeAddress, ShardGroup


def group(name: str, port: int) -> ShardGroup:
    return ShardGroup(
        name=name, primary=NodeAddress("127.0.0.1", port), replicas=()
    )


def epoch_of(*names: str, version: int = 1, vnodes: int = 64) -> RingEpoch:
    return RingEpoch(
        version=version,
        vnodes=vnodes,
        groups=tuple(group(n, 7800 + i) for i, n in enumerate(names)),
    )


class TestRingEpoch:
    def test_roundtrip(self):
        epoch = epoch_of("a", "b")
        blob = epoch.to_bytes()
        back = RingEpoch.from_bytes(blob)
        assert back == epoch
        assert back.to_bytes() == blob

    def test_crc_corruption_rejected(self):
        blob = bytearray(epoch_of("a").to_bytes())
        blob[5] ^= 0xFF
        with pytest.raises(ConfigurationError):
            RingEpoch.from_bytes(bytes(blob))

    def test_truncated_blob_rejected(self):
        blob = epoch_of("a").to_bytes()
        with pytest.raises(ConfigurationError):
            RingEpoch.from_bytes(blob[: len(blob) - 3])

    def test_with_group_bumps_version(self):
        e1 = epoch_of("a", "b")
        e2 = e1.with_group(group("c", 7990))
        assert e2.version == 2
        assert e2.group_names() == ["a", "b", "c"]
        # The original is untouched (frozen value semantics).
        assert e1.group_names() == ["a", "b"]

    def test_without_group_bumps_version(self):
        e1 = epoch_of("a", "b")
        e2 = e1.without_group("b")
        assert e2.version == 2
        assert e2.group_names() == ["a"]

    def test_duplicate_group_rejected(self):
        e1 = epoch_of("a", "b")
        with pytest.raises(ConfigurationError):
            e1.with_group(group("a", 7990))

    def test_cannot_drain_last_group(self):
        with pytest.raises(ConfigurationError):
            epoch_of("a").without_group("a")

    def test_ring_matches_group_membership(self):
        epoch = epoch_of("a", "b", "c")
        ring = epoch.ring()
        for key in (b"x", b"hello", b"key-123"):
            assert ring.owner_at(hash_key(key)) in {"a", "b", "c"}


class TestEpochLog:
    def test_append_load_latest(self, tmp_path):
        log = EpochLog(tmp_path / "epochs")
        e1 = epoch_of("a")
        e2 = e1.with_group(group("b", 7990))
        log.append(e1)
        log.append(e2)
        assert log.versions() == [1, 2]
        assert log.contains(2) and not log.contains(3)
        assert log.load(1) == e1
        assert log.latest() == e2

    def test_reappend_identical_is_idempotent(self, tmp_path):
        log = EpochLog(tmp_path / "epochs")
        e1 = epoch_of("a")
        log.append(e1)
        log.append(e1)  # no error, no duplicate
        assert log.versions() == [1]

    def test_conflicting_history_refused(self, tmp_path):
        log = EpochLog(tmp_path / "epochs")
        log.append(epoch_of("a"))
        with pytest.raises(ClusterError):
            log.append(epoch_of("b"))  # same version, different bytes

    def test_survives_reopen(self, tmp_path):
        EpochLog(tmp_path / "epochs").append(epoch_of("a", "b"))
        assert EpochLog(tmp_path / "epochs").latest().group_names() == [
            "a",
            "b",
        ]


class TestKeyRanges:
    def test_plain_range(self):
        r = KeyRange(start=10, end=20)
        assert r.contains(10) and r.contains(19)
        assert not r.contains(20) and not r.contains(9)
        assert r.span() == 10

    def test_wrapping_range(self):
        top = 2**64 - 1
        r = KeyRange(start=top - 4, end=5)
        assert r.contains(top) and r.contains(0) and r.contains(4)
        assert not r.contains(5) and not r.contains(top - 5)
        assert r.span() == 10

    def test_whole_ring(self):
        r = KeyRange(start=7, end=7)
        assert r.contains(0) and r.contains(2**63)
        assert r.span() == 2**64

    def test_set_json_roundtrip(self):
        ranges = KeyRangeSet(
            (KeyRange(1, 100), KeyRange(2**64 - 10, 3))
        )
        back = KeyRangeSet.from_json(ranges.describe())
        assert back.span() == ranges.span()
        for pos in (1, 99, 2**64 - 1, 2, 100, 500):
            assert back.contains(pos) == ranges.contains(pos)


class TestComputeMoves:
    def test_join_moves_only_to_newcomer(self):
        old = epoch_of("a", "b", "c")
        new = old.with_group(group("d", 7990))
        moves = compute_moves(old, new)
        assert moves, "a join must move something"
        assert all(m.dst == "d" for m in moves)
        assert all(m.src in {"a", "b", "c"} for m in moves)
        # Sampled ownership agrees with the declared moves.
        ranges = KeyRangeSet(tuple(m.range for m in moves))
        ring_old, ring_new = old.ring(), new.ring()
        for key in [b"k-%d" % i for i in range(512)]:
            pos = hash_key(key)
            if ranges.contains(pos):
                assert ring_new.owner_at(pos) == "d"
            else:
                assert ring_new.owner_at(pos) == ring_old.owner_at(pos)

    def test_drain_moves_only_from_leaver(self):
        old = epoch_of("a", "b", "c")
        new = old.without_group("b")
        moves = compute_moves(old, new)
        assert moves
        assert all(m.src == "b" for m in moves)
        assert all(m.dst in {"a", "c"} for m in moves)

    def test_identical_epochs_move_nothing(self):
        old = epoch_of("a", "b")
        same = RingEpoch(version=2, vnodes=old.vnodes, groups=old.groups)
        assert compute_moves(old, same) == []
