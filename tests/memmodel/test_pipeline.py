"""Tests for the SRAM pipeline throughput projection."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memmodel.pipeline import SramPipelineModel


class TestSramPipelineModel:
    def test_memory_bound_case(self):
        model = SramPipelineModel(clock_hz=100e6, memory_ports=1, hash_units=8)
        est = model.estimate(accesses_per_op=2.0, hash_calls_per_op=3.0)
        assert est.bottleneck == "memory"
        assert est.ops_per_second == pytest.approx(50e6)

    def test_hash_bound_case(self):
        model = SramPipelineModel(clock_hz=100e6, memory_ports=8, hash_units=1)
        est = model.estimate(accesses_per_op=1.0, hash_calls_per_op=4.0)
        assert est.bottleneck == "hash"
        assert est.ops_per_second == pytest.approx(25e6)

    def test_paper_headline_speedup(self):
        # CBF at k=3: 3 accesses, 3 hashes. MPCBF-1: 1 access, 3 hashes.
        # On a memory-port-limited pipeline MPCBF-1 is ~3x faster —
        # the architectural claim the paper's intro makes.
        model = SramPipelineModel(clock_hz=350e6, memory_ports=2, hash_units=4)
        speedup = model.speedup_over(1.0, 3.0, 3.0, 3.0)
        assert speedup == pytest.approx(3.0, rel=0.5)

    def test_optimal_k_cbf_loses_badly(self):
        # Fig. 11: optimal-k CBF needs ~10-12 accesses; MPCBF-2 needs 1.8.
        model = SramPipelineModel()
        speedup = model.speedup_over(1.8, 5.0, 12.0, 12.0)
        assert speedup > 3.0

    def test_line_rate(self):
        model = SramPipelineModel(clock_hz=350e6, memory_ports=2, hash_units=8)
        est = model.estimate(1.0, 3.0)
        # 700M lookups/s at min-size packets ≈ 470 Gbps equivalent;
        # at least it must comfortably cover 100 Gbps line cards, the
        # paper's §II application (IPv6 lookups at 100 Gbps [5]).
        assert est.line_rate_gbps() > 100.0

    def test_invalid_model(self):
        with pytest.raises(ConfigurationError):
            SramPipelineModel(clock_hz=0)
        with pytest.raises(ConfigurationError):
            SramPipelineModel(memory_ports=0)

    def test_invalid_costs(self):
        model = SramPipelineModel()
        with pytest.raises(ConfigurationError):
            model.estimate(0, 3)

    def test_monotone_in_accesses(self):
        model = SramPipelineModel(memory_ports=1, hash_units=100)
        rates = [
            model.estimate(a, 1.0).ops_per_second for a in (1, 2, 3, 5, 10)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_estimates_carry_both_bounds(self):
        model = SramPipelineModel(clock_hz=100e6, memory_ports=2, hash_units=2)
        est = model.estimate(2.0, 4.0)
        assert est.memory_bound_ops == pytest.approx(100e6)
        assert est.hash_bound_ops == pytest.approx(50e6)
        assert est.ops_per_second == est.hash_bound_ops
