"""Equal-memory filter construction (the paper's comparison discipline).

Every figure in §IV compares variants *at the same memory consumption*.
:func:`build_filter` maps a (variant, memory budget, k, …) spec onto the
variant's own geometry:

* ``BF`` — ``m = M`` bits.
* ``CBF`` — ``m = M/c`` counters.
* ``BF-g``/``PCBF-g``/``MPCBF-g`` — ``l = M/w`` words of ``w`` bits.
* ``dlCBF`` — buckets sized to fill ``M`` bits of cells.
* ``VI-CBF`` — ``m = M/c`` counters of ``c`` (8) bits.

:func:`build_suite` builds the whole line-up the paper plots, sharing
one :class:`~repro.hashing.encoders.KeyEncoder` and seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.filters.base import FilterBase
from repro.filters.bloom import BloomFilter
from repro.filters.cbf import CountingBloomFilter
from repro.filters.dlcbf import DLeftCBF
from repro.filters.mpcbf import MPCBF
from repro.filters.one_access import OneAccessBloomFilter
from repro.filters.pcbf import PartitionedCBF
from repro.filters.spectral import SpectralBloomFilter
from repro.filters.vicbf import VariableIncrementCBF
from repro.hashing.encoders import KeyEncoder

__all__ = ["FilterSpec", "build_filter", "build_suite"]


@dataclass(frozen=True)
class FilterSpec:
    """Declarative description of one filter in an experiment.

    ``variant`` is one of ``BF``, ``BF-g``, ``CBF``, ``PCBF-g``,
    ``MPCBF-g``, ``dlCBF``, ``VI-CBF`` (``g`` a small integer, e.g.
    ``MPCBF-2``).
    """

    variant: str
    memory_bits: int
    k: int
    word_bits: int = 64
    counter_bits: int = 4
    capacity: int | None = None
    n_max: int | None = None
    seed: int = 0
    extra: dict = field(default_factory=dict)

    def parse_variant(self) -> tuple[str, int]:
        """Split ``"MPCBF-2"`` into ``("MPCBF", 2)``; bare names get g=1."""
        base, _, suffix = self.variant.partition("-")
        if suffix == "":
            return base, 1
        try:
            return base, int(suffix)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad variant suffix in {self.variant!r}"
            ) from exc


def build_filter(spec: FilterSpec, *, encoder: KeyEncoder | None = None) -> FilterBase:
    """Instantiate the filter described by ``spec`` at its memory budget."""
    if spec.variant == "SBF":
        counter_bits = spec.extra.get("counter_bits", 8)
        rm = spec.extra.get("recurring_minimum", True)
        # Memory splits between primary and the m/4 secondary when RM on.
        denom = counter_bits * (5 if rm else 4) // 4
        num_counters = max(4, spec.memory_bits // denom)
        return SpectralBloomFilter(
            num_counters,
            spec.k,
            counter_bits=counter_bits,
            recurring_minimum=rm,
            seed=spec.seed,
            encoder=encoder,
        )
    if spec.variant == "VI-CBF":
        counter_bits = spec.extra.get("counter_bits", 8)
        num_counters = spec.memory_bits // counter_bits
        return VariableIncrementCBF(
            num_counters,
            spec.k,
            L=spec.extra.get("L", 4),
            counter_bits=counter_bits,
            seed=spec.seed,
            encoder=encoder,
        )
    base, g = spec.parse_variant()
    if base == "BF" and g == 1 and spec.variant == "BF":
        return BloomFilter(spec.memory_bits, spec.k, seed=spec.seed, encoder=encoder)
    if base == "BF":
        num_words = spec.memory_bits // spec.word_bits
        return OneAccessBloomFilter(
            num_words, spec.word_bits, spec.k, g=g, seed=spec.seed, encoder=encoder
        )
    if base == "CBF":
        num_counters = spec.memory_bits // spec.counter_bits
        return CountingBloomFilter(
            num_counters,
            spec.k,
            counter_bits=spec.counter_bits,
            seed=spec.seed,
            encoder=encoder,
            **spec.extra,
        )
    if base == "PCBF":
        num_words = spec.memory_bits // spec.word_bits
        return PartitionedCBF(
            num_words,
            spec.word_bits,
            spec.k,
            g=g,
            counter_bits=spec.counter_bits,
            seed=spec.seed,
            encoder=encoder,
            **spec.extra,
        )
    if base == "MPCBF":
        num_words = spec.memory_bits // spec.word_bits
        return MPCBF(
            num_words,
            spec.word_bits,
            spec.k,
            g=g,
            capacity=spec.capacity,
            n_max=spec.n_max,
            seed=spec.seed,
            encoder=encoder,
            **spec.extra,
        )
    if base == "dlCBF":
        d = spec.extra.get("d", 4)
        cells = spec.extra.get("cells_per_bucket", 8)
        fp_bits = spec.extra.get("fingerprint_bits", 14)
        c_bits = spec.extra.get("counter_bits", 2)
        cell_bits = fp_bits + c_bits
        num_buckets = max(1, spec.memory_bits // (d * cells * cell_bits))
        return DLeftCBF(
            num_buckets,
            d=d,
            cells_per_bucket=cells,
            fingerprint_bits=fp_bits,
            counter_bits=c_bits,
            seed=spec.seed,
            encoder=encoder,
        )
    raise ConfigurationError(f"unknown filter variant: {spec.variant!r}")


def build_suite(
    variants: list[str],
    memory_bits: int,
    k: int,
    *,
    capacity: int | None = None,
    word_bits: int = 64,
    counter_bits: int = 4,
    seed: int = 0,
    mpcbf_word_overflow: str = "saturate",
) -> dict[str, FilterBase]:
    """Build all ``variants`` at the same memory budget with a shared encoder.

    Returns a name→filter mapping preserving the input order (Python
    dicts are ordered), ready to run one workload across the line-up.

    MPCBF members default to the ``saturate`` word-overflow policy: the
    Eq. 11 heuristic leaves a non-negligible chance that *some* word of
    a large filter overflows during a long experiment grid, and the
    paper's protocol keeps running; saturation events remain visible in
    ``filter.overflow_events``.
    """
    encoder = KeyEncoder()
    suite: dict[str, FilterBase] = {}
    for variant in variants:
        extra = (
            {"word_overflow": mpcbf_word_overflow}
            if variant.startswith("MPCBF")
            else {}
        )
        spec = FilterSpec(
            variant=variant,
            memory_bits=memory_bits,
            k=k,
            word_bits=word_bits,
            counter_bits=counter_bits,
            capacity=capacity,
            seed=seed,
            extra=extra,
        )
        suite[variant] = build_filter(spec, encoder=encoder)
    return suite
