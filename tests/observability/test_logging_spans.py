"""Unit tests for structured JSON logging and timer spans."""

from __future__ import annotations

import asyncio
import io
import json
import logging

import pytest

from repro.observability.logging import (
    JsonLogFormatter,
    configure_json_logging,
    get_logger,
    new_request_id,
)
from repro.observability.spans import Span, span, spanned
from repro.service.metrics import ServiceMetrics


@pytest.fixture
def json_log_stream():
    """Capture the repro logger tree as JSON lines; detach afterwards."""
    stream = io.StringIO()
    handler = configure_json_logging(stream, level=logging.DEBUG)
    yield stream
    logging.getLogger("repro").removeHandler(handler)


def log_lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLogging:
    def test_every_line_is_valid_json_with_extras(self, json_log_stream):
        logger = get_logger("service.test")
        logger.info("request", extra={"request_id": "abc-1", "op": "QUERY"})
        logger.debug("detail", extra={"keys": 3})
        events = log_lines(json_log_stream)
        assert [e["event"] for e in events] == ["request", "detail"]
        assert events[0]["request_id"] == "abc-1"
        assert events[0]["op"] == "QUERY"
        assert events[0]["level"] == "INFO"
        assert events[0]["logger"] == "repro.service.test"
        assert events[1]["keys"] == 3

    def test_non_serialisable_extras_fall_back_to_str(self, json_log_stream):
        get_logger("x").info("obj", extra={"payload": object()})
        (event,) = log_lines(json_log_stream)
        assert "object object" in event["payload"]

    def test_exception_info_included(self, json_log_stream):
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("x").info("failed", exc_info=True)
        (event,) = log_lines(json_log_stream)
        assert "ValueError: boom" in event["exc"]

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        first = configure_json_logging(stream)
        second = configure_json_logging(stream)
        logger = logging.getLogger("repro")
        json_handlers = [
            h for h in logger.handlers if getattr(h, "_repro_json_handler", False)
        ]
        assert json_handlers == [second]
        assert first is not second
        logger.removeHandler(second)

    def test_get_logger_namespacing(self):
        assert get_logger("service.server").name == "repro.service.server"
        assert get_logger("repro.service").name == "repro.service"

    def test_formatter_compact_single_line(self):
        record = logging.LogRecord(
            "repro.t", logging.INFO, __file__, 1, "msg with \n newline", (), None
        )
        text = JsonLogFormatter().format(record)
        assert "\n" not in text
        assert json.loads(text)["event"] == "msg with \n newline"


class TestRequestIds:
    def test_unique_and_monotone(self):
        ids = [new_request_id() for _ in range(100)]
        assert len(set(ids)) == 100
        # pid prefix shared, sequence increasing
        prefixes = {rid.split("-")[0] for rid in ids}
        assert len(prefixes) == 1
        sequences = [int(rid.split("-")[1], 16) for rid in ids]
        assert sequences == sorted(sequences)


class TestSpans:
    def test_span_records_into_service_metrics(self):
        metrics = ServiceMetrics()
        with span("decode", metrics):
            pass
        assert metrics.spans["decode"].count == 1
        assert metrics.spans["decode"].max >= 0.0

    def test_span_with_callable_sink(self):
        seen = []
        with span("x", lambda name, us: seen.append((name, us))) as timer:
            pass
        assert seen[0][0] == "x"
        assert seen[0][1] == timer.elapsed_us

    def test_span_with_none_sink_still_times(self):
        with span("quiet") as timer:
            pass
        assert timer.elapsed_us >= 0.0

    def test_span_records_failed_blocks_and_reraises(self):
        metrics = ServiceMetrics()
        with pytest.raises(RuntimeError):
            with span("failing", metrics):
                raise RuntimeError("nope")
        assert metrics.spans["failing"].count == 1

    def test_span_rejects_bad_sink(self):
        with pytest.raises(TypeError):
            Span("x", sink=42)

    def test_spanned_decorator_sync(self):
        class Worker:
            def __init__(self):
                self.metrics = ServiceMetrics()

            @spanned("work")
            def work(self, value):
                return value * 2

        worker = Worker()
        assert worker.work(21) == 42
        assert worker.metrics.spans["work"].count == 1

    def test_spanned_decorator_async(self):
        class Worker:
            def __init__(self):
                self.metrics = ServiceMetrics()

            @spanned("awork")
            async def work(self, value):
                await asyncio.sleep(0)
                return value + 1

        worker = Worker()
        assert asyncio.run(worker.work(1)) == 2
        assert worker.metrics.spans["awork"].count == 1

    def test_spanned_tolerates_missing_sink_attr(self):
        class Bare:
            @spanned("anon")
            def work(self):
                return "ok"

        assert Bare().work() == "ok"
