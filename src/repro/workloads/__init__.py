"""Workload generators and experiment runners (§IV–V inputs).

* :mod:`repro.workloads.synthetic` — the paper's synthetic setup:
  100K unique 5-byte strings inserted, 1M queries of which 80% are
  members, plus an update period that deletes and re-inserts 20%.
* :mod:`repro.workloads.traces` — a CAIDA-like IPv4 flow trace:
  Zipf-distributed flow sizes with the paper's unique/total ratio
  (292,363 unique in 5,585,633 total), scalable.
* :mod:`repro.workloads.patents` — NBER-like patent citation pairs for
  the MapReduce reduce-side join of §V.
* :mod:`repro.workloads.runner` — drive a workload through a filter
  suite and collect FPR / access / bandwidth metrics.
"""

from repro.workloads.synthetic import (
    random_strings,
    MembershipWorkload,
    make_synthetic_workload,
)
from repro.workloads.traces import FlowTrace, make_trace_workload
from repro.workloads.patents import PatentDataset, make_patent_dataset
from repro.workloads.churn import ChurnResult, run_churn, first_saturation_epoch
from repro.workloads.adversarial import (
    hot_key_stream,
    mine_colliding_keys,
    mine_single_word_flood,
)
from repro.workloads.runner import (
    MembershipResult,
    run_membership_workload,
    run_suite,
    measure_fpr,
)

__all__ = [
    "random_strings",
    "MembershipWorkload",
    "make_synthetic_workload",
    "FlowTrace",
    "make_trace_workload",
    "PatentDataset",
    "make_patent_dataset",
    "MembershipResult",
    "run_membership_workload",
    "run_suite",
    "measure_fpr",
    "ChurnResult",
    "run_churn",
    "first_saturation_epoch",
    "hot_key_stream",
    "mine_colliding_keys",
    "mine_single_word_flood",
]
