"""Common filter API shared by every variant in :mod:`repro.filters`.

Design notes
------------
* **Keys.** Public methods accept raw keys (bytes/str/int/flow tuples);
  each filter owns a :class:`~repro.hashing.encoders.KeyEncoder` and the
  ``*_encoded`` methods accept pre-encoded 64-bit keys so bulk callers
  can encode a dataset once and reuse it across all variants — that is
  how the paper compares variants "on the same datasets".
* **Scalar vs bulk.** Scalar methods are the straightforward reference
  implementation (simple and legible first, per the optimisation guide);
  ``*_many`` bulk methods are NumPy-vectorised hot paths.  Tests assert
  the two agree.
* **Accounting.** Every operation records word accesses and hash-bit
  bandwidth into ``self.stats`` (:class:`repro.memmodel.AccessStats`);
  the numbers in the paper's Tables I–III fall out of these counters.
"""

from __future__ import annotations

import enum
from typing import Iterable

import numpy as np

from repro.errors import UnsupportedOperationError
from repro.hashing.encoders import KeyEncoder
from repro.memmodel.accounting import AccessStats

__all__ = ["OverflowPolicy", "FilterBase", "CountingFilterBase"]


class OverflowPolicy(str, enum.Enum):
    """What a counting filter does when a counter hits its maximum.

    ``RAISE`` surfaces :class:`repro.errors.CounterOverflowError` (the
    library default — the paper sizes counters so overflow is a bug).
    ``SATURATE`` pins the counter at its maximum, which is the common
    hardware behaviour; note that subsequent deletes through a saturated
    counter can introduce false negatives, which the filter then merely
    counts in ``saturation_events``.
    """

    RAISE = "raise"
    SATURATE = "saturate"


class FilterBase:
    """Abstract approximate-membership filter.

    Subclasses must implement the ``*_encoded`` scalar primitives and
    may override the bulk methods with vectorised versions (the default
    bulk implementations loop over the scalar path).
    """

    #: Human-readable variant name, e.g. ``"MPCBF-2"``; set by subclass.
    name: str = "filter"

    def __init__(self, *, encoder: KeyEncoder | None = None) -> None:
        self.encoder = encoder or KeyEncoder()
        self.stats = AccessStats()

    # -- sizing ---------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Total memory footprint in bits (the paper's x-axis)."""
        raise NotImplementedError

    @property
    def num_hashes(self) -> int:
        """Number of index hash functions ``k``."""
        raise NotImplementedError

    # -- scalar primitives (encoded keys) -------------------------------
    def insert_encoded(self, encoded_key: int) -> None:
        raise NotImplementedError

    def query_encoded(self, encoded_key: int) -> bool:
        raise NotImplementedError

    # -- public scalar API ----------------------------------------------
    def insert(self, key: object) -> None:
        """Insert one key."""
        self.insert_encoded(self.encoder.encode(key))

    def query(self, key: object) -> bool:
        """Return True if the key *may* be in the set (no false negatives)."""
        return self.query_encoded(self.encoder.encode(key))

    def __contains__(self, key: object) -> bool:
        return self.query(key)

    # -- bulk API ---------------------------------------------------------
    def insert_many(self, keys: object) -> None:
        """Insert a bulk collection of keys (array or iterable)."""
        for encoded in self._encode_bulk(keys):
            self.insert_encoded(int(encoded))

    def query_many(self, keys: object) -> np.ndarray:
        """Query a bulk collection; returns a boolean array."""
        encoded = self._encode_bulk(keys)
        return np.fromiter(
            (self.query_encoded(int(e)) for e in encoded),
            dtype=bool,
            count=len(encoded),
        )

    def _encode_bulk(self, keys: object) -> np.ndarray:
        if isinstance(keys, np.ndarray) and keys.dtype == np.uint64:
            return keys
        if isinstance(keys, (np.ndarray, list, tuple)) or isinstance(
            keys, Iterable
        ):
            return self.encoder.encode_many(keys)
        raise TypeError(f"unsupported bulk key container: {type(keys).__name__}")

    # -- maintenance ------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the access statistics (e.g. after the build phase)."""
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name} bits={self.total_bits} "
            f"k={self.num_hashes}>"
        )


class CountingFilterBase(FilterBase):
    """A filter that additionally supports deletion and counting."""

    def delete_encoded(self, encoded_key: int) -> None:
        raise NotImplementedError

    def count_encoded(self, encoded_key: int) -> int:
        """Upper-bound multiplicity estimate (min over hashed counters)."""
        raise NotImplementedError

    def delete(self, key: object) -> None:
        """Delete one previously inserted key.

        Deleting a key that was never inserted raises
        :class:`repro.errors.CounterUnderflowError` (or silently corrupts
        a saturated counter — see :class:`OverflowPolicy`).
        """
        self.delete_encoded(self.encoder.encode(key))

    def count(self, key: object) -> int:
        """Estimated multiplicity of the key (never an underestimate)."""
        return self.count_encoded(self.encoder.encode(key))

    def delete_many(self, keys: object) -> None:
        """Delete a bulk collection of keys."""
        for encoded in self._encode_bulk(keys):
            self.delete_encoded(int(encoded))

    def count_many(self, keys: object) -> np.ndarray:
        """Bulk multiplicity estimates; returns an int64 array."""
        encoded = self._encode_bulk(keys)
        return np.fromiter(
            (self.count_encoded(int(e)) for e in encoded),
            dtype=np.int64,
            count=len(encoded),
        )


def require_counting(filter_obj: FilterBase) -> CountingFilterBase:
    """Assert that a filter supports deletion, for generic harness code."""
    if not isinstance(filter_obj, CountingFilterBase):
        raise UnsupportedOperationError(
            f"{filter_obj.name} does not support deletion"
        )
    return filter_obj
