"""Overload integration: 10x offered load against a live daemon.

A faster sibling of ``benchmarks/bench_overload.py`` sized for the
tier-1 suite (~3s): one in-process daemon with a cost-aware admission
controller, offered ten times its token rate, must shed the excess
with hinted ``OVERLOADED`` frames while admitted requests keep bounded
latency, lose no acknowledged write, and return to shed-free service
once the storm passes.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.overload import AdmissionController, TokenBucket
from repro.parallel.sharded import ShardedFilterBank
from repro.service.client import AsyncFilterClient
from repro.service.protocol import ErrorCode, RemoteError
from repro.service.server import FilterServer

from tests.service.test_integration import make_bank

CAPACITY_QPS = 300.0
BURST = 30.0
CLIENTS = 8
WRITES = 12


async def _paced_queries(port: int, ops: int, interval_s: float, out: dict):
    """Offer single-key queries on an absolute schedule (see benchmark)."""
    async with AsyncFilterClient(port=port) as client:
        start = time.perf_counter()
        for i in range(ops):
            due = start + i * interval_s
            delay = due - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            sent = time.perf_counter()
            try:
                await client.query(b"member-%d" % (i % 200))
            except RemoteError as exc:
                out["shed"] += 1
                if exc.code != ErrorCode.OVERLOADED or exc.retry_after_s is None:
                    out["bad_sheds"].append(repr(exc))
            else:
                out["admitted"] += 1
                out["latencies"].append(time.perf_counter() - sent)


async def _offer(port: int, offered_qps: float, duration_s: float) -> dict:
    out = {"latencies": [], "admitted": 0, "shed": 0, "bad_sheds": []}
    per_client = offered_qps / CLIENTS
    ops = max(1, int(per_client * duration_s))
    await asyncio.gather(
        *[
            _paced_queries(port, ops, 1.0 / per_client, out)
            for _ in range(CLIENTS)
        ]
    )
    return out


async def _writer(port: int) -> list[bytes]:
    """Insert WRITES keys through the storm, honouring retry hints."""
    acked: list[bytes] = []
    give_up_at = time.perf_counter() + 20.0
    async with AsyncFilterClient(port=port) as client:
        for i in range(WRITES):
            key = b"storm-write-%d" % i
            while True:
                try:
                    await client.insert(key)
                except RemoteError as exc:
                    assert exc.code == ErrorCode.OVERLOADED, exc
                    assert (
                        time.perf_counter() < give_up_at
                    ), f"write {i} still shedding long after the storm"
                    await asyncio.sleep(min(exc.retry_after_s or 0.01, 0.05))
                else:
                    acked.append(key)
                    break
            await asyncio.sleep(0.01)
    return acked


def _p99_ms(latencies: list[float]) -> float:
    return 1e3 * float(np.percentile(np.asarray(latencies), 99))


class TestOverloadEndToEnd:
    def test_10x_storm_sheds_with_hints_and_recovers(self):
        async def main():
            bank = make_bank(seed=23)
            bank.insert_many([b"member-%d" % i for i in range(200)])
            admission = AdmissionController(
                max_inflight=128,
                bucket=TokenBucket(CAPACITY_QPS, BURST),
            )
            server = FilterServer(
                bank, port=0, max_delay_us=200.0, admission=admission
            )
            await server.start()
            try:
                unloaded = await _offer(server.port, CAPACITY_QPS / 3, 0.9)
                storm_task = asyncio.ensure_future(
                    _offer(server.port, CAPACITY_QPS * 10, 1.2)
                )
                writer_task = asyncio.ensure_future(_writer(server.port))
                storm = await storm_task
                acked = await writer_task
                # "Load dropped" includes one refill interval: the storm
                # leaves the bucket empty, and recovery is about steady
                # state, not the first microseconds after the last shed.
                await asyncio.sleep(BURST / CAPACITY_QPS)
                recovery = await _offer(server.port, CAPACITY_QPS / 3, 0.6)
                async with AsyncFilterClient(port=server.port) as client:
                    while True:
                        try:
                            present = await client.query_many(acked)
                            break
                        except RemoteError as exc:
                            assert exc.code == ErrorCode.OVERLOADED, exc
                            await asyncio.sleep(exc.retry_after_s or 0.05)
                return unloaded, storm, recovery, acked, present, admission
            finally:
                await server.stop()

        unloaded, storm, recovery, acked, present, admission = asyncio.run(
            main()
        )

        # Baseline: a third of capacity sheds nothing.
        assert unloaded["shed"] == 0
        assert unloaded["admitted"] > 0

        # The storm sheds, and every shed was OVERLOADED with a hint.
        assert storm["shed"] > 0, "10x offered load must shed"
        assert storm["admitted"] > 0, "shedding must not starve everything"
        for phase in (unloaded, storm, recovery):
            assert phase["bad_sheds"] == []

        # Admitted requests keep bounded latency — shed-at-the-door, not
        # queue growth (10 ms absolute localhost ceiling keeps the
        # sub-ms-baseline ratio from flaking on busy CI runners).
        bound_ms = max(3 * _p99_ms(unloaded["latencies"]), 10.0)
        assert _p99_ms(storm["latencies"]) <= bound_ms

        # Post-storm traffic is shed-free again (hysteresis cleared,
        # bucket refilled) and back inside the latency bound.
        assert recovery["shed"] == 0
        assert _p99_ms(recovery["latencies"]) <= bound_ms

        # Zero acked-write loss: every write eventually acked, and every
        # ack is query-positive (MPCBF has no false negatives).
        assert len(acked) == WRITES
        assert int(sum(present)) == WRITES

        # The controller's own books agree with what clients saw.
        report = admission.describe()
        assert report["shed"].get("rate_limited", 0) >= storm["shed"]
        assert report["inflight"] == 0
