#!/usr/bin/env python3
"""Distributed filter construction on the MapReduce engine.

The §V pipeline builds its filter on one node; at NBER/patent scale
that is fine, but the same DistributedCache pattern at web scale builds
the filter *distributedly*: each map task fills a partial counting
filter over its input split, and a reduce step merges the partials
(``CountingBloomFilter.merge`` / ``MPCBF.merge`` — exact multiset
union, so deletions still work afterwards).  This example runs that
job on the bundled engine and verifies the merged filter is
bit-for-bit the one a single node would have built.

Run:  python examples/distributed_build.py
"""

from __future__ import annotations

import numpy as np

from repro.filters.mpcbf import MPCBF
from repro.mapreduce import LocalMapReduceEngine
from repro.serialize import dump_filter, load_filter


def make_partial() -> MPCBF:
    # Every worker builds the same geometry from the same seed — the
    # precondition for merging.  Sized via the Eq. 11 heuristic for the
    # full key count so no word saturates during the build.
    return MPCBF(8192, 64, 3, capacity=12_000, seed=42)


def build_mapper(record, ctx):
    # Map phase just routes records to the single build partition; the
    # combiner turns each task's records into one serialised partial
    # filter, so the shuffle carries filters instead of raw keys.
    ctx.counters.increment("build.keys")
    ctx.emit(0, record)


def main() -> None:
    rng = np.random.default_rng(6)
    keys = rng.integers(1, 2**62, size=12_000).astype(np.uint64)

    engine = LocalMapReduceEngine(num_map_tasks=6, num_reduce_tasks=1)

    def combiner(key, values):
        # Map-side combine: build this task's partial filter from its
        # records and ship the serialised filter instead of raw keys —
        # the shuffle carries 6 filters, not 12K records.
        partial = make_partial()
        partial.insert_many(np.array(values, dtype=np.uint64))
        yield dump_filter(partial)

    def reducer(key, values, ctx):
        merged = make_partial()
        for blob in values:
            merged.merge(load_filter(blob))
        ctx.emit(dump_filter(merged))

    result = engine.run(list(keys), build_mapper, reducer, combiner=combiner)
    merged = load_filter(result.output[0])

    single = make_partial()
    single.insert_many(keys)

    assert merged.query_many(keys).all(), "merged filter lost a key!"
    same = all(
        merged.words[i].level_sizes() == single.words[i].level_sizes()
        for i in range(merged.num_words)
    )
    print(
        f"built a filter over {len(keys):,} keys across "
        f"{engine.num_map_tasks} map tasks"
    )
    print(
        f"  shuffle carried {result.counters.shuffle_records} records "
        f"(the serialised partials) instead of {len(keys):,} raw keys"
    )
    print(f"  merged filter identical to single-node build: {same}")
    probes = rng.integers(1, 2**62, size=50_000).astype(np.uint64) | np.uint64(
        1 << 63
    )
    print(f"  merged-filter FPR on fresh probes: {merged.query_many(probes).mean():.4%}")
    # Deletions still work on the merged filter — it is a true CBF.
    merged.delete_many(keys[:1000])
    still_hit = int(merged.query_many(keys[:1000]).sum())
    print(
        f"  deleted 1000 keys from the merged filter; {1000 - still_hit} now "
        f"miss ({still_hit} remain as ordinary false positives from the "
        f"other 11K keys' bits)"
    )


if __name__ == "__main__":
    main()
