"""Tests for the ``python -m repro.bench`` entry point."""

from __future__ import annotations

import json

from repro.bench.__main__ import main


class TestBenchMain:
    def test_runs_named_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        rc = main(["fig9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scale: ci" in out
        assert "fig9" in out

    def test_unknown_id_rejected(self, capsys):
        rc = main(["fig99"])
        assert rc == 2
        assert "unknown experiment ids" in capsys.readouterr().out

    def test_export_writes_files(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        rc = main(["fig9", "--export", str(tmp_path)])
        assert rc == 0
        data = json.loads((tmp_path / "fig9.json").read_text())
        assert data["experiment_id"] == "fig9"
        assert "### fig9" in (tmp_path / "results.md").read_text()

    def test_export_requires_directory(self, capsys):
        rc = main(["fig9", "--export"])
        assert rc == 2
        assert "requires a directory" in capsys.readouterr().out
