"""Tests for the workload runner (the §IV measurement protocol)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.filters import BloomFilter, CountingBloomFilter, build_suite
from repro.workloads.runner import (
    measure_fpr,
    run_membership_workload,
    run_suite,
)
from repro.workloads.synthetic import make_synthetic_workload


@pytest.fixture(scope="module")
def workload():
    return make_synthetic_workload(n_members=2000, n_queries=20_000, seed=4)


class TestMeasureFpr:
    def test_empty_filter_zero_fpr(self, negative_keys):
        assert measure_fpr(BloomFilter(1 << 16, 3), negative_keys) == 0.0

    def test_no_negatives(self):
        assert measure_fpr(BloomFilter(64, 2), np.zeros(0, np.uint64)) == 0.0

    def test_loaded_filter(self, small_keys, negative_keys):
        bf = BloomFilter(512, 3)  # deliberately tight
        bf.insert_many(small_keys)
        assert measure_fpr(bf, negative_keys) > 0.0


class TestRunMembershipWorkload:
    def test_counting_filter_full_protocol(self, workload):
        cbf = CountingBloomFilter(40_000, 3, seed=1)
        res = run_membership_workload(cbf, workload)
        assert res.false_negatives == 0
        assert 0.0 <= res.false_positive_rate < 0.2
        assert res.n_queries == 20_000
        assert res.mean_query_accesses > 0
        assert res.mean_update_accesses == pytest.approx(3.0)
        assert res.query_seconds > 0

    def test_plain_bloom_skips_churn(self, workload):
        bf = BloomFilter(160_000, 3, seed=1)
        res = run_membership_workload(bf, workload)
        # Without deletion the filter keeps churn-out members; ground
        # truth is adjusted, so no false negatives are reported.
        assert res.false_negatives == 0
        assert res.mean_update_bits > 0  # inserts counted as updates

    def test_row_keys(self, workload):
        cbf = CountingBloomFilter(40_000, 3)
        row = run_membership_workload(cbf, workload).row()
        assert {"filter", "fpr", "q_accesses", "u_bits"} <= set(row)

    def test_stats_reset_between_phases(self, workload):
        cbf = CountingBloomFilter(40_000, 3)
        res = run_membership_workload(cbf, workload)
        # Query stats must reflect only the query phase.
        assert cbf.stats.query.operations == res.n_queries
        assert cbf.stats.insert.operations == 0


class TestRunSuite:
    def test_all_variants(self, workload):
        suite = build_suite(
            ["CBF", "PCBF-1", "MPCBF-1"], 200_000, 3, capacity=2000
        )
        results = run_suite(suite, workload)
        assert set(results) == {"CBF", "PCBF-1", "MPCBF-1"}
        for name, res in results.items():
            assert res.name == name
            assert res.false_negatives == 0

    def test_mpcbf_beats_pcbf_on_fpr(self, workload):
        suite = build_suite(
            ["PCBF-1", "MPCBF-1"], 120_000, 3, capacity=2000, seed=2
        )
        results = run_suite(suite, workload)
        assert (
            results["MPCBF-1"].false_positive_rate
            < results["PCBF-1"].false_positive_rate
        )
