#!/usr/bin/env python3
"""Firewall ACL classification with tuple-space search (paper ref [9]).

Builds a 2,000-rule ACL over (source-prefix, destination-prefix)
tuples, fronts every tuple's exact table with an MPCBF, classifies a
packet stream, then applies a batch of ACL updates (rule removals) to
show counting filters keeping the fast path clean — the
packet-classification scenario the paper's introduction motivates.

Run:  python examples/acl_classifier.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.classifier import Rule, TupleSpaceClassifier
from repro.errors import ConfigurationError
from repro.filters.mpcbf import MPCBF


def main() -> None:
    rng = np.random.default_rng(9)

    def filter_factory(tuple_key):
        return MPCBF(
            512, 64, 3, capacity=1500, seed=hash(tuple_key) & 0xFFFF,
            word_overflow="saturate",
        )

    clf = TupleSpaceClassifier(filter_factory)
    rules: list[Rule] = []
    actions = ["allow", "drop", "log", "rate-limit"]
    while len(rules) < 2000:
        src_len = int(rng.choice([8, 16, 24]))
        dst_len = int(rng.choice([0, 8, 16]))
        rule = Rule(
            int(rng.integers(0, 1 << src_len)),
            src_len,
            int(rng.integers(0, 1 << dst_len)) if dst_len else 0,
            dst_len,
            actions[len(rules) % 4],
            priority=len(rules),
        )
        try:
            clf.add_rule(rule)
        except ConfigurationError:
            continue
        rules.append(rule)
    print(
        f"installed {clf.num_rules} rules across {clf.num_tuples} tuples "
        f"({sum(f.total_bits for f in clf.filters.values()) // 8192} KiB on-chip)"
    )

    # Packet stream: half covered by rules, half random.
    packets = []
    for rule in (rules[i] for i in rng.integers(0, len(rules), size=5000)):
        src = (rule.src << (32 - rule.src_len)) if rule.src_len else 1
        dst = (rule.dst << (32 - rule.dst_len)) if rule.dst_len else 2
        packets.append((src, dst))
    packets += [
        (int(s), int(d))
        for s, d in zip(
            rng.integers(0, 1 << 32, size=5000),
            rng.integers(0, 1 << 32, size=5000),
        )
    ]

    t0 = time.perf_counter()
    matched = sum(clf.classify(s, d).matched for s, d in packets)
    elapsed = time.perf_counter() - t0
    print(
        f"classified {len(packets)} packets in {elapsed:.2f}s "
        f"({len(packets) / elapsed / 1e3:.0f} Kpkt/s), matched {matched}; "
        f"exact-table probes/packet = {clf.exact_probes / len(packets):.2f} "
        f"(of {clf.num_tuples} tuples)"
    )

    # ACL update: remove a quarter of the rules, then verify cleanliness.
    removed = rules[:: 4]
    for rule in removed:
        clf.remove_rule(rule)
    clf.exact_probes = clf.false_probes = 0
    for rule in removed[:500]:
        src = (rule.src << (32 - rule.src_len)) if rule.src_len else 1
        dst = (rule.dst << (32 - rule.dst_len)) if rule.dst_len else 2
        clf.classify(src, dst)
    print(
        f"after removing {len(removed)} rules: wasted probes on their "
        f"packets = {clf.false_probes} (counting filters decrement cleanly; "
        f"a plain Bloom front-end would leak a probe per packet here)"
    )


if __name__ == "__main__":
    main()
