"""Injectable transport seam for the serving and cluster stacks.

Every place the codebase opens or accepts a TCP connection goes through a
:class:`Transport` instance instead of calling ``asyncio.open_connection`` /
``asyncio.start_server`` / ``socket.create_connection`` directly.  The default
:data:`REAL_TRANSPORT` binds real sockets and is behaviourally identical to
the direct calls it replaces; the chaos harness (:mod:`repro.chaos`)
substitutes an in-memory :class:`repro.chaos.network.SimNetwork` so the
*unmodified* server, replication, and client code can run over simulated
links with injectable delay, drops, partitions, and resets.

The seam is intentionally tiny: three factory methods mirroring the stdlib
entry points.  Anything richer (TLS, happy eyeballs) would live behind the
same three calls.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Awaitable, Callable, Optional, Tuple

__all__ = ["Transport", "RealTransport", "REAL_TRANSPORT"]

ConnectionHandler = Callable[
    [asyncio.StreamReader, asyncio.StreamWriter], Awaitable[None]
]


class Transport:
    """Abstract connection factory used by servers and clients.

    Implementations must provide the three methods below.  ``start_server``
    returns an object with ``close()`` / ``wait_closed()`` and a way to
    discover the bound port via :meth:`server_port`.
    """

    async def start_server(
        self, handler: ConnectionHandler, host: str, port: int
    ) -> object:
        """Begin accepting connections; return a server handle."""
        raise NotImplementedError

    def server_port(self, server: object) -> int:
        """Return the concrete port a ``start_server`` handle is bound to."""
        raise NotImplementedError

    async def open_connection(
        self, host: str, port: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Dial ``host:port`` and return a stream pair."""
        raise NotImplementedError

    def create_connection(
        self, host: str, port: int, *, timeout_s: Optional[float] = None
    ) -> socket.socket:
        """Synchronously dial ``host:port`` (blocking-client path)."""
        raise NotImplementedError


class RealTransport(Transport):
    """The production transport: real TCP sockets via the stdlib."""

    async def start_server(
        self, handler: ConnectionHandler, host: str, port: int
    ) -> object:
        return await asyncio.start_server(handler, host, port)

    def server_port(self, server: object) -> int:
        return server.sockets[0].getsockname()[1]  # type: ignore[attr-defined]

    async def open_connection(
        self, host: str, port: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_connection(host, port)

    def create_connection(
        self, host: str, port: int, *, timeout_s: Optional[float] = None
    ) -> socket.socket:
        sock = socket.create_connection((host, port), timeout=timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock


#: Shared production transport; stateless, safe to reuse everywhere.
REAL_TRANSPORT = RealTransport()
