"""Fig. 2 — analytic FPR of CBF vs PCBF-1/PCBF-2 across word sizes.

Regenerates the rows of the paper's fig02 via
:func:`repro.bench.experiments.fig02` and prints them.  See
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import experiments


def test_fig02(benchmark, scale, capsys):
    report = run_once(benchmark, experiments.fig02, scale)
    with capsys.disabled():
        print()
        print(report.render())
    assert report.rows
