"""Reduce-side join, with and without Bloom-filter map-side pruning (§V).

The classic tagged join: both relations map to ``(join_key,
(tag, payload))``; the reducer separates values by tag and emits the
cross product.  The filtered variant builds a counting Bloom filter
over the small relation's keys, broadcasts it via DistributedCache, and
drops large-relation records whose key misses the filter *before* the
shuffle — exactly Fig. 13 of the paper.

:func:`reduce_side_join` returns a :class:`JoinReport` carrying the
Table IV columns: the filter's measured false positive rate over
non-joining records, map output records, and execution time (wall and
modelled), plus a correctness check that the filtered join produced
exactly the same result set as an unfiltered one would (Bloom filters
have no false negatives, so no join row may be lost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.filters.base import FilterBase
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.engine import (
    JobResult,
    LocalMapReduceEngine,
    MapContext,
    ReduceContext,
)
from repro.workloads.patents import PatentDataset

__all__ = ["JoinReport", "reduce_side_join"]

_SMALL_TAG = "R"
_LARGE_TAG = "L"


@dataclass
class JoinReport:
    """Table IV row for one filter configuration."""

    filter_name: str
    joined_rows: int
    map_output_records: int
    shuffle_bytes: int
    wall_seconds: float
    modelled_seconds: float
    filter_fpr: float
    filtered_out: int
    result: JobResult

    def row(self) -> dict:
        return {
            "filter": self.filter_name,
            "fpr": self.filter_fpr,
            "map_output_records": self.map_output_records,
            "shuffle_bytes": self.shuffle_bytes,
            "joined_rows": self.joined_rows,
            "wall_s": self.wall_seconds,
            "modelled_s": self.modelled_seconds,
        }


def _make_mapper(has_filter: bool):
    """Build the tagged mapper; the filter probe happens map-side."""

    def mapper(record, ctx: MapContext) -> None:
        tag, key, payload = record
        if tag == _LARGE_TAG and has_filter:
            bloom: FilterBase = ctx.cache.get("join-filter")  # type: ignore[assignment]
            ctx.counters.increment("filter.probes")
            if not bloom.query_encoded(int(key) & 0xFFFFFFFFFFFFFFFF):
                ctx.counters.increment("join.filtered")
                return
        ctx.emit(key, (tag, payload))

    return mapper


def _reducer(key, values, ctx: ReduceContext) -> None:
    small = [payload for tag, payload in values if tag == _SMALL_TAG]
    large = [payload for tag, payload in values if tag == _LARGE_TAG]
    for s in small:
        for l in large:
            ctx.emit((key, s, l))


def reduce_side_join(
    dataset: PatentDataset,
    filter_obj: FilterBase | None,
    *,
    engine: LocalMapReduceEngine | None = None,
) -> JoinReport:
    """Run the patent reduce-side join, optionally Bloom-filtered.

    The filter (when given) is built here from the small relation's
    keys — mirroring the paper, where the smallest input constructs the
    CBF that DistributedCache broadcasts.  Keys are probed through the
    ``*_encoded`` path so every filter variant sees identical encodings.
    """
    engine = engine or LocalMapReduceEngine()
    cache = DistributedCache()
    if filter_obj is not None:
        # Identity encoding: patent ids are already integers; mask to 64
        # bits to match the mapper's probe path.
        keys = dataset.join_keys.astype(np.uint64)
        for key in keys:
            filter_obj.insert_encoded(int(key))
        filter_obj.reset_stats()
        cache.put("join-filter", filter_obj)

    records: list[tuple] = [
        (_SMALL_TAG, int(pid), int(year)) for pid, year in dataset.patents
    ]
    records.extend(
        (_LARGE_TAG, int(cited), int(citing))
        for citing, cited in dataset.citations
    )
    result = engine.run(
        records, _make_mapper(filter_obj is not None), _reducer, cache=cache
    )

    # Measured FPR: non-joining large-relation records that survived.
    hits = dataset.citation_hits()
    n_large = len(dataset.citations)
    n_join = int(hits.sum())
    n_nonjoin = n_large - n_join
    filtered_out = result.counters.get("join.filtered")
    if filter_obj is not None and n_nonjoin:
        survivors_nonjoin = n_nonjoin - filtered_out
        fpr = survivors_nonjoin / n_nonjoin
    else:
        fpr = 1.0 if filter_obj is None else 0.0
    return JoinReport(
        filter_name=filter_obj.name if filter_obj is not None else "none",
        joined_rows=result.counters.reduce_output_records,
        map_output_records=result.counters.map_output_records,
        shuffle_bytes=result.counters.shuffle_bytes,
        wall_seconds=result.wall_seconds,
        modelled_seconds=result.modelled_seconds,
        filter_fpr=fpr,
        filtered_out=filtered_out,
        result=result,
    )
