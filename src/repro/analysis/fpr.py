"""Closed-form false positive rates — Eq. (1)–(5), (8), (9).

All the partitioned formulas share one shape: the number of element
slots landing in a word is binomial, and conditioned on ``j`` slots the
word behaves like a tiny Bloom filter over its offset range.  The
generic mixture is evaluated with ``scipy.stats.binom`` over the
numerically relevant part of the support (tail mass below 1e-15 is
truncated), which keeps the sums exact to double precision without
iterating to ``n`` for the paper's ``n = 100 000``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import stats

from repro.analysis.heuristics import improved_b1, n_max_heuristic
from repro.errors import ConfigurationError

__all__ = ["bf_fpr", "cbf_fpr", "bfg_fpr", "pcbf_fpr", "mpcbf_fpr", "mpcbf_fpr_average"]

_TAIL = 1e-15


def bf_fpr(n: int, m: int, k: int, *, exact: bool = True) -> float:
    """Standard Bloom filter FPR, Eq. (1).

    Parameters
    ----------
    n, m, k:
        Elements stored, vector bits, hash functions.
    exact:
        Use ``(1 − (1 − 1/m)^{kn})^k``; otherwise the ``e^{−kn/m}``
        approximation.
    """
    if min(n, m, k) < 1:
        raise ConfigurationError(f"n, m, k must be >= 1, got {(n, m, k)}")
    if exact:
        # log1p keeps (1 - 1/m)^{kn} accurate for large m.
        inner = -np.expm1(k * n * np.log1p(-1.0 / m))
    else:
        inner = -np.expm1(-k * n / m)
    return float(inner**k)


def cbf_fpr(n: int, memory_bits: int, k: int, *, counter_bits: int = 4) -> float:
    """Standard CBF FPR at a total memory budget.

    A CBF of ``M`` bits has ``m = M/c`` counters and the same FPR as a
    Bloom filter with ``m`` bits (a counter is "set" iff nonzero).
    """
    m = memory_bits // counter_bits
    return bf_fpr(n, m, k)


def bfg_fpr(
    n: int,
    memory_bits: int,
    word_bits: int,
    k: int,
    *,
    g: int = 1,
) -> float:
    """One-memory-access Bloom filter (BF-g, Qiao et al. [11]) FPR.

    Identical mixture to Eq. (2)/(3) with plain bits instead of 4-bit
    counters: a word of ``w`` bits receives ``Binom(g·n, 1/l)`` element
    slots of ``k/g`` set bits each.
    """
    l = memory_bits // word_bits
    if l < 1:
        raise ConfigurationError("memory budget smaller than one word")
    hashes_per_word = k / g
    word_fp = _binomial_mixture(
        g * n, 1.0 / l, lambda j: _small_bf_fpr(j, word_bits, hashes_per_word)
    )
    return float(word_fp**g)


def _binomial_mixture(
    trials: int, p: float, per_word: Callable[[np.ndarray], np.ndarray]
) -> float:
    """``Σ_j P[Binom(trials, p) = j] · per_word(j)`` over the live support."""
    dist = stats.binom(trials, p)
    lo = int(dist.ppf(_TAIL))
    hi = int(dist.ppf(1.0 - _TAIL)) + 1
    j = np.arange(lo, hi + 1)
    pmf = dist.pmf(j)
    values = per_word(j.astype(float))
    return float(np.sum(pmf * values))


def _small_bf_fpr(j: np.ndarray, bits: float, hashes: float) -> np.ndarray:
    """FPR of a ``bits``-wide Bloom region holding ``j`` slots of
    ``hashes`` hashes each: ``(1 − (1 − 1/bits)^{j·hashes})^hashes``.

    ``hashes`` may be fractional (``k/g``), exactly as the paper writes
    Eq. (3)/(8) with the ``k/g`` exponent.
    """
    inner = -np.expm1(j * hashes * np.log1p(-1.0 / bits))
    return inner**hashes


def pcbf_fpr(
    n: int,
    memory_bits: int,
    word_bits: int,
    k: int,
    *,
    g: int = 1,
    counter_bits: int = 4,
) -> float:
    """PCBF-g FPR, Eq. (2) for g=1 and Eq. (3) in general.

    ``E'``, the number of element slots in a word, is
    ``Binom(g·n, 1/l)``; conditioned on ``j`` slots the word holds
    ``j·k/g`` set counters out of ``w/c``, and a false positive needs
    all ``k/g`` probes per word to hit nonzero counters, independently
    across the ``g`` words.
    """
    l = memory_bits // word_bits
    if l < 1:
        raise ConfigurationError("memory budget smaller than one word")
    counters_per_word = word_bits // counter_bits
    hashes_per_word = k / g
    word_fp = _binomial_mixture(
        g * n,
        1.0 / l,
        lambda j: _small_bf_fpr(j, counters_per_word, hashes_per_word),
    )
    return float(word_fp**g)


def mpcbf_fpr(
    n: int,
    memory_bits: int,
    word_bits: int,
    k: int,
    *,
    g: int = 1,
    n_max: int | None = None,
    first_level_bits: int | None = None,
) -> float:
    """MPCBF-g FPR with the improved HCBF, Eq. (5) / Eq. (9).

    The first level has ``b1 = w − ⌈k/g⌉·n_max`` bits (``n_max`` from
    Eq. 11 unless given); a query probes ``k/g`` first-level bits in
    each of ``g`` words.
    """
    l = memory_bits // word_bits
    if l < 1:
        raise ConfigurationError("memory budget smaller than one word")
    if first_level_bits is None:
        if n_max is None:
            n_max = n_max_heuristic(n, l, g=g)
        first_level_bits = improved_b1(word_bits, k, n_max, g=g)
    b1 = first_level_bits
    hashes_per_word = k / g
    word_fp = _binomial_mixture(
        g * n, 1.0 / l, lambda j: _small_bf_fpr(j, b1, hashes_per_word)
    )
    return float(word_fp**g)


def mpcbf_fpr_average(
    n: int, memory_bits: int, word_bits: int, k: int, *, g: int = 1
) -> float:
    """Average-case MPCBF FPR with ``b1 = w − k·n·w/(4m)`` (§III.B.3 end).

    Assumes elements spread evenly (``n_avg = n/l`` per word); used for
    the Fig. 5 curves where the paper plots the *average* rate.
    """
    l = memory_bits // word_bits
    if l < 1:
        raise ConfigurationError("memory budget smaller than one word")
    n_avg = g * n / l
    hashes_per_word = k / g
    b1 = word_bits - hashes_per_word * n_avg
    if b1 < 1:
        return 1.0
    word_fp = _binomial_mixture(
        g * n, 1.0 / l, lambda j: _small_bf_fpr(j, b1, hashes_per_word)
    )
    return float(word_fp**g)
