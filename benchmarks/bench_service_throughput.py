"""Daemon throughput: ops/s vs client concurrency, coalescing on/off.

The service's performance claim mirrors the paper's: amortise a fixed
per-operation cost over a batch.  This bench starts the daemon
in-process on an ephemeral port and measures single-key QUERY
throughput at 1-, 8-, and 64-way client concurrency, once with the
coalescer enabled (200 us window) and once disabled (``max_delay_us=0``
— every request dispatches alone, the per-op baseline).  At one client
there is nothing to coalesce and the two configurations tie; at 64-way
concurrency the coalesced daemon must win, because each dispatch then
carries many keys down the vectorised ``query_many`` path.

Writes ``results/service-throughput.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.filters.factory import FilterSpec
from repro.parallel.sharded import ShardedFilterBank
from repro.service.client import AsyncFilterClient
from repro.service.server import FilterServer

CONCURRENCY_LEVELS = (1, 8, 64)
RESULTS_PATH = Path(__file__).resolve().parents[1] / "results"


def _make_bank(members: int):
    bank = ShardedFilterBank(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=64 * 8192,
            k=3,
            capacity=max(members, 1000),
            seed=3,
            extra={"word_overflow": "saturate"},
        ),
        num_shards=4,
    )
    bank.insert_many([b"member-%d" % i for i in range(members)])
    return bank


async def _drive(server: FilterServer, clients: int, ops_per_client: int):
    async def one_client(c: int) -> int:
        async with AsyncFilterClient(port=server.port) as client:
            for i in range(ops_per_client):
                await client.query(b"member-%d" % ((c * ops_per_client + i) % 1000))
        return ops_per_client

    started = time.perf_counter()
    counts = await asyncio.gather(*[one_client(c) for c in range(clients)])
    elapsed = time.perf_counter() - started
    return sum(counts), elapsed


def _measure(
    members: int, clients: int, ops_per_client: int, coalesce: bool
) -> dict:
    async def main():
        server = FilterServer(
            _make_bank(members),
            port=0,
            max_delay_us=200.0 if coalesce else 0.0,
        )
        await server.start()
        total, elapsed = await _drive(server, clients, ops_per_client)
        mean_batch = server.metrics.mean_batch_size
        await server.stop()
        return total, elapsed, mean_batch

    total, elapsed, mean_batch = asyncio.run(main())
    return {
        "clients": clients,
        "coalescing": coalesce,
        "ops": total,
        "elapsed_s": round(elapsed, 4),
        "ops_per_s": round(total / elapsed, 1),
        "mean_batch_requests": round(mean_batch, 2),
    }


def service_throughput(scale) -> list[dict]:
    # ~1/20th of the synthetic query volume keeps the 6-config grid
    # inside a CI-friendly wall-clock budget at every scale.
    ops_total = max(1000, scale.synth_queries // 20)
    members = min(scale.synth_members, 1000)
    return [
        _measure(members, clients, max(20, ops_total // clients), coalesce)
        for coalesce in (True, False)
        for clients in CONCURRENCY_LEVELS
    ]


def test_service_throughput(benchmark, scale, capsys):
    rows = run_once(benchmark, service_throughput, scale)
    RESULTS_PATH.mkdir(exist_ok=True)
    out = RESULTS_PATH / "service-throughput.json"
    out.write_text(json.dumps({"scale": scale.name, "rows": rows}, indent=2))
    with capsys.disabled():
        print()
        header = f"{'clients':>8} {'coalesce':>9} {'ops/s':>12} {'mean batch':>11}"
        print(header)
        for row in rows:
            print(
                f"{row['clients']:>8} {str(row['coalescing']):>9} "
                f"{row['ops_per_s']:>12.0f} {row['mean_batch_requests']:>11.2f}"
            )
    by_key = {(r["clients"], r["coalescing"]): r for r in rows}
    # The acceptance shape: coalescing wins at 64-way concurrency.
    assert (
        by_key[(64, True)]["ops_per_s"] > by_key[(64, False)]["ops_per_s"]
    ), "coalesced daemon must beat per-op dispatch at 64-way concurrency"
    # And it really coalesced: mean batch size well above one request.
    assert by_key[(64, True)]["mean_batch_requests"] > 1.5
