"""Property-based tests for the MapReduce engine.

Oracle: a direct single-pass group-by in plain Python.  The engine must
produce identical results for any mapper/reducer pair regardless of how
many map/reduce tasks the work is split across, with or without a
combiner — the determinism contract distributed jobs rely on.
"""

from __future__ import annotations

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.mapreduce.engine import LocalMapReduceEngine


def tag_mapper(record, ctx):
    key, value = record
    ctx.emit(key % 5, value)
    if value % 2 == 0:
        ctx.emit(-1, value)  # "even" bucket; int key keeps sorting total


def sum_reducer(key, values, ctx):
    ctx.emit((key, sum(values), len(values)))


def _oracle(records):
    grouped = defaultdict(list)
    for key, value in records:
        grouped[key % 5].append(value)
        if value % 2 == 0:
            grouped[-1].append(value)
    return sorted(
        (key, sum(vals), len(vals)) for key, vals in grouped.items()
    )


_records = st.lists(
    st.tuples(st.integers(0, 30), st.integers(-100, 100)), max_size=80
)


class TestEngineProperties:
    @settings(max_examples=60, deadline=None)
    @given(_records, st.integers(1, 8), st.integers(1, 5))
    def test_matches_oracle_for_any_task_split(self, records, m, r):
        engine = LocalMapReduceEngine(num_map_tasks=m, num_reduce_tasks=r)
        result = engine.run(records, tag_mapper, sum_reducer)
        assert sorted(result.output) == _oracle(records)

    @settings(max_examples=40, deadline=None)
    @given(_records, st.integers(1, 6))
    def test_combiner_preserves_results(self, records, m):
        def combiner(key, values):
            # Associative partial sum carried as (sum, count) pairs —
            # the reducer below reconstructs totals.
            yield (sum(values), len(values))

        def pair_reducer(key, values, ctx):
            total = sum(s for s, _ in values)
            count = sum(c for _, c in values)
            ctx.emit((key, total, count))

        plain = LocalMapReduceEngine(num_map_tasks=m, num_reduce_tasks=2)
        combined = LocalMapReduceEngine(num_map_tasks=m, num_reduce_tasks=2)
        base = plain.run(records, tag_mapper, sum_reducer)
        opt = combined.run(records, tag_mapper, pair_reducer, combiner=combiner)
        assert sorted(base.output) == sorted(opt.output)
        # The combiner may only shrink the shuffle.
        assert (
            opt.counters.shuffle_records <= base.counters.shuffle_records
        )

    @settings(max_examples=40, deadline=None)
    @given(_records)
    def test_counter_conservation(self, records):
        engine = LocalMapReduceEngine(num_map_tasks=3, num_reduce_tasks=2)
        result = engine.run(records, tag_mapper, sum_reducer)
        c = result.counters
        assert c.map_input_records == len(records)
        # Without a combiner, everything emitted is shuffled and reduced.
        assert c.map_output_records == c.shuffle_records
        assert c.shuffle_records == c.reduce_input_records
        assert c.reduce_output_records == len(result.output)
