"""Append-only write-ahead log of filter mutations.

Durability for the serving daemon between snapshots: every INSERT /
DELETE request appends one record *before* it is applied to the filter,
so after a crash the state is reconstructed as ``snapshot + replay``.
The same records double as the replication stream a primary ships to
its replicas (:mod:`repro.cluster.replication`).

On-disk layout — a directory of segment files, rotated by size::

    wal-00000000000000000001.seg     records with seq >= 1
    wal-00000000000000004097.seg     records with seq >= 4097 (current)

    record  := u32 crc32(payload) | u32 len(payload) | payload
    payload := u64 seq | u8 op | u32 count | count x (u16 len | key)
    columnar payload (BULK64_* ops) := u64 seq | u8 op | u32 count |
                                       count x u64 key

All integers little-endian; the key encoding matches the wire
protocol's BATCH body, so a record's tail can be framed into a
REPLICATE body without re-encoding.  Columnar records (the bulk64
fastpath) store their pre-encoded ``uint64`` keys as a packed column —
written with one buffer copy, decoded with a zero-copy ``frombuffer``
view — while the legacy reader continues to handle every byte-key
record in the same log.  ``seq`` is a contiguous,
monotonically increasing 1-based sequence number; the primary assigns
it and replicas preserve it, which is what makes "catch up from offset
``n``" well defined cluster-wide.

Crash semantics: a torn final record (truncated or CRC-mismatched) is
the expected signature of dying mid-append — recovery stops replay
there and truncates the tail so new appends never follow garbage.
Corruption *before* the tail raises
:class:`~repro.errors.WalCorruptionError` instead of silently dropping
acknowledged history.

Fsync policy trades durability for append latency:

``always``    fsync after every record (safest, slowest)
``batch``     fsync once per coalesced micro-batch (the default — the
              same amortisation story as the paper's one-word layout)
``interval``  fsync at most every ``fsync_interval_s`` seconds
``never``     leave it to the OS page cache
"""

from __future__ import annotations

import enum
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigurationError, WalCorruptionError
from repro.service.protocol import COLUMNAR_RECORD_OPS, RECORD_OPS, Opcode
from repro.service.storage import REAL_STORAGE, Storage

__all__ = [
    "FsyncPolicy",
    "WalRecord",
    "WalCursor",
    "WriteAheadLog",
]

_RECORD_HEADER = struct.Struct("<II")  # crc32(payload), len(payload)
_PAYLOAD_PREFIX = struct.Struct("<QBI")  # seq, op, key count
_KEY_LEN = struct.Struct("<H")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"

#: Mutations a WAL record may carry (client ops plus migration applies).
_WAL_OPS = RECORD_OPS


class FsyncPolicy(str, enum.Enum):
    """When appended records are forced to stable storage."""

    ALWAYS = "always"
    BATCH = "batch"
    INTERVAL = "interval"
    NEVER = "never"


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation: ``op`` applied to ``keys`` at ``seq``.

    Legacy records hold ``keys`` as a tuple of byte strings; columnar
    records (BULK64_* ops) hold a read-only ``uint64`` ndarray of
    pre-encoded keys.
    """

    seq: int
    op: Opcode
    keys: "tuple[bytes, ...] | np.ndarray"


@dataclass
class WalCursor:
    """Resumable read position (segment path + byte offset + next seq).

    Handed back by :meth:`WriteAheadLog.read` so a replication link
    tails the log without rescanning segments from the start on every
    poll.
    """

    segment: Path
    offset: int
    next_seq: int


def _encode_record(seq: int, op: Opcode, keys) -> bytes:
    if op in COLUMNAR_RECORD_OPS:
        arr = np.ascontiguousarray(keys, dtype="<u8")
        payload = _PAYLOAD_PREFIX.pack(seq, op, arr.size) + arr.tobytes()
    else:
        parts = [_PAYLOAD_PREFIX.pack(seq, op, len(keys))]
        for key in keys:
            parts.append(_KEY_LEN.pack(len(key)))
            parts.append(key)
        payload = b"".join(parts)
    return _RECORD_HEADER.pack(zlib.crc32(payload), len(payload)) + payload


def _decode_payload(payload: bytes) -> WalRecord:
    seq, raw_op, count = _PAYLOAD_PREFIX.unpack_from(payload)
    op = Opcode(raw_op)
    if op not in _WAL_OPS:
        raise ValueError(f"WAL record carries non-mutation op {op.name}")
    pos = _PAYLOAD_PREFIX.size
    if op in COLUMNAR_RECORD_OPS:
        if len(payload) - pos != count * 8:
            raise ValueError("WAL columnar record length mismatch")
        column = np.frombuffer(payload, dtype="<u8", count=count, offset=pos)
        return WalRecord(seq=seq, op=op, keys=column)
    keys: list[bytes] = []
    for _ in range(count):
        (key_len,) = _KEY_LEN.unpack_from(payload, pos)
        pos += _KEY_LEN.size
        keys.append(payload[pos : pos + key_len])
        pos += key_len
    if pos != len(payload):
        raise ValueError("trailing bytes after WAL record keys")
    return WalRecord(seq=seq, op=op, keys=tuple(keys))


def _segment_path(directory: Path, first_seq: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{first_seq:020d}{_SEGMENT_SUFFIX}"


def _segment_first_seq(path: Path) -> int:
    stem = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    return int(stem)


class WriteAheadLog:
    """Segmented, CRC-checked append log of filter mutations.

    Parameters
    ----------
    directory:
        Segment directory; created if missing.  Opening an existing
        directory recovers the last valid sequence number (and truncates
        a torn tail record, see the module docstring).
    segment_bytes:
        Rotation threshold; a segment is closed once it exceeds this.
    fsync:
        A :class:`FsyncPolicy` (or its string value).
    fsync_interval_s:
        Max staleness for the ``interval`` policy.
    metrics:
        Optional :class:`~repro.service.metrics.ServiceMetrics`; fsync
        latency lands in the ``wal_fsync`` span histogram.
    on_append:
        Optional callback invoked (on the appending thread) after each
        record is written — the replication layer uses it to wake its
        streaming links.
    storage:
        Durable-write seam (default: real files + real fsync).  The
        chaos harness injects a fault-tracking
        :class:`~repro.chaos.storage.FaultyStorage` here.

    Thread-safety: appends must come from a single thread (the daemon's
    batcher worker); reads (:meth:`read`, for replication) may run
    concurrently from other threads because appends flush each complete
    record before updating ``last_seq``.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        segment_bytes: int = 4 * 1024 * 1024,
        fsync: FsyncPolicy | str = FsyncPolicy.BATCH,
        fsync_interval_s: float = 0.05,
        metrics=None,
        on_append: Callable[[int], None] | None = None,
        storage: Storage | None = None,
    ) -> None:
        if segment_bytes < 1:
            raise ConfigurationError(
                f"segment_bytes must be >= 1, got {segment_bytes}"
            )
        self.storage = storage if storage is not None else REAL_STORAGE
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.fsync_policy = FsyncPolicy(fsync)
        self.fsync_interval_s = fsync_interval_s
        self.metrics = metrics
        self.on_append = on_append
        self.appends_total = 0
        self.fsyncs_total = 0
        self.bytes_written = 0
        self._last_sync_monotonic = time.monotonic()
        self._handle = None
        self._dirty = False
        self.last_seq = 0
        self._recover()

    # -- recovery --------------------------------------------------------
    def segments(self) -> list[Path]:
        """Segment paths in sequence order."""
        return sorted(
            p
            for p in self.directory.glob(
                f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"
            )
            if p.is_file()
        )

    @property
    def first_seq(self) -> int:
        """Sequence of the oldest record still on disk.

        ``last_seq + 1`` when the log holds no records (empty or fully
        compacted) — i.e. ``first_seq <= s <= last_seq`` iff record
        ``s`` is replayable.
        """
        segments = self.segments()
        if not segments:
            return self.last_seq + 1
        # A just-rotated (still empty) first segment is named last_seq+1,
        # so the filename floor is correct in that case too.
        return min(_segment_first_seq(segments[0]), self.last_seq + 1)

    def _recover(self) -> None:
        """Find the last valid record; truncate a torn tail in place."""
        segments = self.segments()
        if not segments:
            self.last_seq = 0
            return
        # Sequence numbers are contiguous, so only the final segment can
        # hold the torn tail; earlier segments still get CRC checks on
        # replay/read, just not at open time.
        tail = segments[-1]
        last_seq = _segment_first_seq(tail) - 1
        valid_end = 0
        data = tail.read_bytes()
        pos = 0
        while pos + _RECORD_HEADER.size <= len(data):
            crc, length = _RECORD_HEADER.unpack_from(data, pos)
            end = pos + _RECORD_HEADER.size + length
            if end > len(data):
                break
            payload = data[pos + _RECORD_HEADER.size : end]
            if zlib.crc32(payload) != crc:
                break
            try:
                record = _decode_payload(payload)
            except (ValueError, struct.error):
                break
            last_seq = record.seq
            valid_end = end
            pos = end
        if valid_end < len(data):
            with open(tail, "r+b") as handle:
                handle.truncate(valid_end)
        self.last_seq = max(self.last_seq, last_seq)
        if not valid_end and len(segments) > 1:
            # The torn segment held nothing valid at all; its sequence
            # floor is still authoritative for last_seq.
            self.last_seq = max(self.last_seq, _segment_first_seq(tail) - 1)

    # -- appending -------------------------------------------------------
    def _open_segment(self, first_seq: int) -> None:
        self._close_handle()
        path = _segment_path(self.directory, first_seq)
        self._handle = self.storage.open(path, "ab")
        self._current_path = path

    def _ensure_handle(self) -> None:
        if self._handle is not None:
            return
        segments = self.segments()
        if segments:
            self._handle = self.storage.open(segments[-1], "ab")
            self._current_path = segments[-1]
        else:
            self._open_segment(self.last_seq + 1)

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def append(self, op: Opcode, keys, *, seq: int | None = None) -> int:
        """Write one record; returns its sequence number.

        ``seq`` is assigned (``last_seq + 1``) when omitted — the
        primary's path.  Replicas pass the primary's sequence through;
        a record at or below ``last_seq`` is a replayed duplicate and
        is skipped (idempotent re-delivery after reconnect).
        """
        if op not in _WAL_OPS:
            raise ConfigurationError(f"WAL cannot log {Opcode(op).name} records")
        if seq is None:
            seq = self.last_seq + 1
        elif seq <= self.last_seq:
            return self.last_seq
        elif seq != self.last_seq + 1:
            raise WalCorruptionError(
                f"replication gap: expected seq {self.last_seq + 1}, got {seq}"
            )
        self._ensure_handle()
        blob = _encode_record(seq, op, keys)
        offset = self._handle.tell()
        try:
            self._handle.write(blob)
            # Flush each complete record so concurrent readers
            # (replication links) and a same-box crash never observe a
            # partial buffer.
            self._handle.flush()
        except OSError:
            # A partial write (ENOSPC, I/O error) must not leave torn
            # bytes for the next append to follow: replay would stop at
            # the garbage and silently drop every later record.  Roll
            # the segment back to the last complete record.
            try:
                self._handle.truncate(offset)
                self._handle.seek(offset)
            except OSError:
                pass  # rollback is best-effort; recovery truncates too
            raise
        self.appends_total += 1
        self.bytes_written += len(blob)
        self._dirty = True
        self.last_seq = seq
        if self.fsync_policy is FsyncPolicy.ALWAYS:
            self.sync()
        elif self.fsync_policy is FsyncPolicy.INTERVAL:
            if (
                time.monotonic() - self._last_sync_monotonic
                >= self.fsync_interval_s
            ):
                self.sync()
        if self._handle.tell() >= self.segment_bytes:
            self.sync()
            self._open_segment(seq + 1)
        if self.on_append is not None:
            self.on_append(seq)
        return seq

    def sync(self) -> None:
        """fsync the current segment (no-op when nothing is dirty)."""
        if self._handle is None or not self._dirty:
            return
        started = time.perf_counter()
        self._handle.flush()
        self.storage.fsync(self._handle)
        self._dirty = False
        self.fsyncs_total += 1
        self._last_sync_monotonic = time.monotonic()
        if self.metrics is not None:
            self.metrics.observe_span(
                "wal_fsync", (time.perf_counter() - started) * 1e6
            )

    def sync_batch(self) -> None:
        """Batch-boundary hook: fsync under the ``batch`` policy."""
        if self.fsync_policy is FsyncPolicy.BATCH:
            self.sync()

    def close(self) -> None:
        """Flush, fsync, and release the current segment."""
        if self._handle is not None:
            self.sync()
        self._close_handle()

    def abandon(self) -> None:
        """Release the current segment WITHOUT forcing it to disk.

        The crash-simulation twin of :meth:`close`: whatever the fsync
        policy has already synced is durable, anything newer is at the
        mercy of the (simulated) page cache.  The chaos harness calls
        this when it crash-stops a node so torn-tail scenarios are not
        papered over by a tidy shutdown fsync.
        """
        self._close_handle()
        self._dirty = False

    # -- reading ---------------------------------------------------------
    def _iter_segment(
        self, path: Path, *, is_tail: bool
    ) -> Iterator[tuple[WalRecord, int]]:
        """Yield (record, end_offset) pairs from one segment file."""
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return
        pos = 0
        while pos + _RECORD_HEADER.size <= len(data):
            crc, length = _RECORD_HEADER.unpack_from(data, pos)
            end = pos + _RECORD_HEADER.size + length
            if end > len(data):
                if is_tail:
                    return
                raise WalCorruptionError(f"{path}: truncated mid-log record")
            payload = data[pos + _RECORD_HEADER.size : end]
            if zlib.crc32(payload) != crc:
                if is_tail:
                    return
                raise WalCorruptionError(f"{path}: CRC mismatch mid-log")
            try:
                record = _decode_payload(payload)
            except (ValueError, struct.error) as exc:
                if is_tail:
                    return
                raise WalCorruptionError(f"{path}: malformed record") from exc
            yield record, end
            pos = end
        if pos != len(data) and not is_tail:
            raise WalCorruptionError(f"{path}: trailing garbage mid-log")

    def replay(self, *, start_seq: int = 1) -> Iterator[WalRecord]:
        """Yield every durable record with ``seq >= start_seq`` in order."""
        segments = self.segments()
        for index, path in enumerate(segments):
            is_tail = index == len(segments) - 1
            # Skip whole segments strictly below the requested range.
            if (
                index + 1 < len(segments)
                and _segment_first_seq(segments[index + 1]) <= start_seq
            ):
                continue
            for record, _ in self._iter_segment(path, is_tail=is_tail):
                if record.seq >= start_seq:
                    yield record

    def read(
        self,
        start_seq: int,
        *,
        cursor: WalCursor | None = None,
        max_records: int = 256,
    ) -> tuple[list[WalRecord], WalCursor | None]:
        """Read up to ``max_records`` from ``start_seq``, resumably.

        Pass the returned cursor back (with the next ``start_seq``) to
        continue without rescanning.  A stale cursor (rotated or
        compacted segment, or a seek mismatch) silently falls back to a
        fresh scan.  Returns ``([], cursor)`` at the durable tail.
        """
        if cursor is not None and (
            cursor.next_seq != start_seq or not cursor.segment.exists()
        ):
            cursor = None
        segments = self.segments()
        if not segments:
            return [], None
        out: list[WalRecord] = []
        if cursor is None:
            # Locate the segment that could contain start_seq.
            target = segments[0]
            for path in segments:
                if _segment_first_seq(path) <= start_seq:
                    target = path
                else:
                    break
            cursor = WalCursor(segment=target, offset=0, next_seq=start_seq)
        while len(out) < max_records:
            is_tail = cursor.segment == segments[-1]
            for record, end in self._iter_segment_from(
                cursor.segment, cursor.offset, is_tail=is_tail
            ):
                cursor.offset = end
                if record.seq >= start_seq:
                    out.append(record)
                    cursor.next_seq = record.seq + 1
                    start_seq = record.seq + 1
                if len(out) >= max_records:
                    break
            if len(out) >= max_records or is_tail:
                break
            # Current segment exhausted; move to the next one.
            index = segments.index(cursor.segment)
            if index + 1 >= len(segments):
                break
            cursor = WalCursor(
                segment=segments[index + 1], offset=0, next_seq=start_seq
            )
        return out, cursor

    def _iter_segment_from(
        self, path: Path, offset: int, *, is_tail: bool
    ) -> Iterator[tuple[WalRecord, int]]:
        for record, end in self._iter_segment(path, is_tail=is_tail):
            if end > offset:
                yield record, end

    # -- compaction ------------------------------------------------------
    def truncate_through(self, seq: int) -> int:
        """Drop whole segments made redundant by a snapshot at ``seq``.

        Log compaction: once a snapshot covers every record up to
        ``seq``, segments whose records all fall at or below it are
        unlinked.  The current segment is rotated first so it becomes
        eligible on the *next* compaction.  Returns segments removed.
        """
        self.sync()
        if (
            self._handle is not None
            and self._handle.tell() > 0
            and self.last_seq >= seq
        ):
            self._open_segment(self.last_seq + 1)
        segments = self.segments()
        removed = 0
        for index, path in enumerate(segments):
            if index + 1 >= len(segments):
                break  # never unlink the live tail segment
            next_first = _segment_first_seq(segments[index + 1])
            if next_first - 1 <= seq:
                path.unlink(missing_ok=True)
                removed += 1
            else:
                break
        return removed

    def reset_to(self, seq: int) -> None:
        """Discard everything and restart numbering after ``seq``.

        Used when a replica installs a full snapshot from its primary:
        local history is superseded wholesale, and the next record the
        primary streams will be ``seq + 1``.
        """
        self._close_handle()
        for path in self.segments():
            path.unlink(missing_ok=True)
        self.last_seq = seq
        self._dirty = False

    # -- introspection ---------------------------------------------------
    def size_bytes(self) -> int:
        """Total on-disk size of all segments."""
        return sum(p.stat().st_size for p in self.segments())

    def describe(self) -> dict:
        """Plain-dict view for STATS reports and the metrics exporter."""
        segments = self.segments()
        return {
            "directory": str(self.directory),
            "last_seq": self.last_seq,
            "first_seq": self.first_seq,
            "segments": len(segments),
            "size_bytes": self.size_bytes(),
            "appends_total": self.appends_total,
            "fsyncs_total": self.fsyncs_total,
            "fsync_policy": self.fsync_policy.value,
        }
