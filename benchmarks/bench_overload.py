"""Overload behaviour: shedding keeps admitted latency bounded at 10x load.

The load-management claim (see ``docs/operations.md``): a daemon with
admission control, offered 10x its configured capacity, must

- keep serving at its capacity (goodput >= 80% of the token rate),
- keep the latency of *admitted* requests bounded (p99 within 3x the
  unloaded p99, or an absolute 5 ms localhost ceiling — shedding at
  the door is what prevents queue-growth latency),
- shed the excess with ``OVERLOADED`` frames that carry a retry-after
  hint (never a hang, never a silent drop),
- lose no acknowledged write: every INSERT the server acks must be
  query-positive afterwards, and writes that shed during the storm
  must succeed once load drops (recovery).

Three phases run against one in-process daemon: an unloaded baseline
at half capacity, the 10x storm (16 paced query clients plus a writer
that retries on the server's hints), and a post-storm recovery pass at
baseline pacing.  Writes ``results/overload.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.filters.factory import FilterSpec
from repro.parallel.sharded import ShardedFilterBank
from repro.service.client import AsyncFilterClient
from repro.service.protocol import ErrorCode, RemoteError
from repro.service.server import FilterServer
from repro.overload import AdmissionController, TokenBucket

RESULTS_PATH = Path(__file__).resolve().parents[1] / "results"

#: Configured capacity: the token-bucket refill rate, in query-cost
#: units per second.  Small enough that 10x fits comfortably inside an
#: asyncio loop that also hosts the 16 driving clients.
CAPACITY_QPS = 400.0
BURST = 40.0
CLIENTS = 16
OVERLOAD_FACTOR = 10
WRITES = 40


def _make_bank(members: int):
    bank = ShardedFilterBank(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=64 * 8192,
            k=3,
            capacity=max(members, 1000),
            seed=3,
            extra={"word_overflow": "saturate"},
        ),
        num_shards=4,
    )
    bank.insert_many([b"member-%d" % i for i in range(members)])
    return bank


async def _paced_client(port: int, ops: int, interval_s: float, out: dict):
    """Offer ``ops`` single-key queries on an absolute schedule.

    Pacing is schedule-based, not sleep-based: a slow round trip does
    not reduce the offered rate, it just makes the next sends
    back-to-back — which is what a real retry storm does.
    """
    async with AsyncFilterClient(port=port) as client:
        start = time.perf_counter()
        for i in range(ops):
            due = start + i * interval_s
            delay = due - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            sent = time.perf_counter()
            try:
                await client.query(b"member-%d" % (i % 1000))
            except RemoteError as exc:
                out["shed"] += 1
                if exc.code != ErrorCode.OVERLOADED:
                    out["unexpected_errors"] += 1
                elif exc.retry_after_s is None:
                    out["missing_hints"] += 1
            else:
                out["admitted"] += 1
                out["latencies"].append(time.perf_counter() - sent)


async def _offer(port: int, offered_qps: float, duration_s: float) -> dict:
    """Drive ``offered_qps`` across CLIENTS connections; return tallies."""
    out = {
        "latencies": [],
        "admitted": 0,
        "shed": 0,
        "missing_hints": 0,
        "unexpected_errors": 0,
    }
    per_client = offered_qps / CLIENTS
    ops = max(1, int(per_client * duration_s))
    started = time.perf_counter()
    await asyncio.gather(
        *[_paced_client(port, ops, 1.0 / per_client, out) for _ in range(CLIENTS)]
    )
    out["elapsed_s"] = time.perf_counter() - started
    out["offered_qps"] = offered_qps
    return out


async def _writer(port: int, n_writes: int, stop_retrying_at: float) -> dict:
    """Insert ``n_writes`` unique keys, honouring retry-after hints.

    During the storm the cost-aware bucket prices a write at 4 queries,
    so most attempts shed; the writer sleeps the server's hint and
    retries — the contract is that every write eventually lands once
    load drops, and that any ack given is durable.
    """
    acked: list[bytes] = []
    shed_attempts = 0
    async with AsyncFilterClient(port=port) as client:
        for i in range(n_writes):
            key = b"storm-write-%d" % i
            while True:
                try:
                    await client.insert(key)
                except RemoteError as exc:
                    if exc.code != ErrorCode.OVERLOADED:
                        raise
                    shed_attempts += 1
                    hint = exc.retry_after_s or 0.01
                    await asyncio.sleep(min(hint, 0.05))
                    if time.perf_counter() > stop_retrying_at:
                        raise AssertionError(
                            f"write {i} still shedding after the storm ended"
                        )
                else:
                    acked.append(key)
                    break
            await asyncio.sleep(0.01)
    return {"acked": acked, "shed_attempts": shed_attempts}


def _p99_s(latencies: list[float]) -> float:
    return float(np.percentile(np.asarray(latencies), 99))


def _row(phase: str, out: dict) -> dict:
    row = {
        "phase": phase,
        "offered_qps": round(out["offered_qps"], 1),
        "elapsed_s": round(out["elapsed_s"], 3),
        "admitted": out["admitted"],
        "shed": out["shed"],
        "goodput_qps": round(out["admitted"] / out["elapsed_s"], 1),
        "missing_hints": out["missing_hints"],
        "unexpected_errors": out["unexpected_errors"],
    }
    if out["latencies"]:
        row["p50_ms"] = round(1e3 * float(np.median(out["latencies"])), 3)
        row["p99_ms"] = round(1e3 * _p99_s(out["latencies"]), 3)
    return row


def overload_suite(scale) -> dict:
    members = min(scale.synth_members, 1000)

    async def main():
        admission = AdmissionController(
            max_inflight=256,
            bucket=TokenBucket(CAPACITY_QPS, BURST),
        )
        server = FilterServer(
            _make_bank(members), port=0, max_delay_us=200.0, admission=admission
        )
        await server.start()
        try:
            unloaded = await _offer(server.port, CAPACITY_QPS / 2, 2.0)
            storm_task = asyncio.ensure_future(
                _offer(server.port, CAPACITY_QPS * OVERLOAD_FACTOR, 2.5)
            )
            writer_task = asyncio.ensure_future(
                _writer(server.port, WRITES, time.perf_counter() + 25.0)
            )
            storm = await storm_task
            # Load has dropped; the writer now has the bucket to itself.
            writes = await writer_task
            recovery = await _offer(server.port, CAPACITY_QPS / 2, 1.0)
            async with AsyncFilterClient(port=server.port) as client:
                # The 40-key audit costs 40 tokens in one acquire; honour
                # the hint like any well-behaved client until it fits.
                while True:
                    try:
                        present = await client.query_many(writes["acked"])
                        break
                    except RemoteError as exc:
                        if exc.code != ErrorCode.OVERLOADED:
                            raise
                        await asyncio.sleep(exc.retry_after_s or 0.05)
            return unloaded, storm, writes, recovery, present
        finally:
            await server.stop()

    unloaded, storm, writes, recovery, present = asyncio.run(main())
    return {
        "capacity_qps": CAPACITY_QPS,
        "rows": [
            _row("unloaded", unloaded),
            _row("overloaded", storm),
            _row("recovery", recovery),
        ],
        "writes": {
            "attempted": WRITES,
            "acked": len(writes["acked"]),
            "shed_attempts": writes["shed_attempts"],
            "acked_and_present": int(sum(present)),
        },
    }


def test_overload(benchmark, scale, capsys):
    report = run_once(benchmark, overload_suite, scale)
    RESULTS_PATH.mkdir(exist_ok=True)
    out = RESULTS_PATH / "overload.json"
    out.write_text(json.dumps({"scale": scale.name, **report}, indent=2))
    rows = {row["phase"]: row for row in report["rows"]}
    with capsys.disabled():
        print()
        print(
            f"{'phase':>11} {'offered/s':>10} {'goodput/s':>10} "
            f"{'shed':>7} {'p99 ms':>8}"
        )
        for row in report["rows"]:
            print(
                f"{row['phase']:>11} {row['offered_qps']:>10.0f} "
                f"{row['goodput_qps']:>10.0f} {row['shed']:>7} "
                f"{row.get('p99_ms', float('nan')):>8.2f}"
            )
        writes = report["writes"]
        print(
            f"writes: {writes['acked']}/{writes['attempted']} acked "
            f"({writes['shed_attempts']} shed attempts), "
            f"{writes['acked_and_present']} present after the storm"
        )

    # Baseline sanity: half capacity sheds nothing.
    assert rows["unloaded"]["shed"] == 0
    assert rows["unloaded"]["admitted"] > 0

    # Every shed carried OVERLOADED with a usable retry-after hint.
    for row in rows.values():
        assert row["unexpected_errors"] == 0
        assert row["missing_hints"] == 0

    # 10x storm: the daemon keeps serving at its configured capacity.
    storm = rows["overloaded"]
    assert storm["shed"] > 0, "a 10x storm must shed"
    assert storm["goodput_qps"] >= 0.8 * report["capacity_qps"], (
        f"goodput {storm['goodput_qps']}/s under 10x load must stay >= 80% "
        f"of the {report['capacity_qps']}/s capacity"
    )

    # Admitted requests keep bounded latency: within 3x the unloaded
    # p99, or a 5 ms absolute localhost ceiling (sub-ms baselines make
    # a pure ratio flaky — the operative claim is "bounded, not
    # queue-growth latency").
    bound_ms = max(3 * rows["unloaded"]["p99_ms"], 5.0)
    assert storm["p99_ms"] <= bound_ms, (
        f"admitted p99 {storm['p99_ms']}ms exceeds bound {bound_ms}ms"
    )
    assert rows["recovery"]["shed"] == 0, "post-storm load must all admit"
    assert rows["recovery"]["p99_ms"] <= bound_ms

    # Zero acked-write loss: every acked write is queryable, and once
    # load dropped every write got through.
    writes = report["writes"]
    assert writes["acked"] == writes["attempted"]
    assert writes["acked_and_present"] == writes["acked"]
