"""Deadline: monotonic budgets and their wire-unit view."""

from __future__ import annotations

import pytest

from repro.overload.deadline import Deadline


class TestDeadline:
    def test_after_counts_down(self, clock):
        deadline = Deadline.after(0.5, clock=clock)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.advance(0.2)
        assert deadline.remaining() == pytest.approx(0.3)

    def test_remaining_clamps_at_zero(self, clock):
        deadline = Deadline.after(0.1, clock=clock)
        clock.advance(5.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_expired_at_the_exact_boundary(self, clock):
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(1.0)
        assert deadline.expired()

    def test_negative_budget_clamps_to_now(self, clock):
        deadline = Deadline.after(-3.0, clock=clock)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_remaining_us_is_the_wire_unit(self, clock):
        deadline = Deadline.after(0.25, clock=clock)
        assert deadline.remaining_us() == 250_000
        clock.advance(0.25)
        assert deadline.remaining_us() == 0
