"""Failure-injection tests driven by adversarial workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, WordOverflowError
from repro.filters.mpcbf import MPCBF
from repro.hashing.families import PartitionedHashFamily
from repro.workloads.adversarial import (
    hot_key_stream,
    mine_colliding_keys,
    mine_single_word_flood,
)


class TestMineCollidingKeys:
    def test_all_keys_hit_target_word(self):
        fam = PartitionedHashFamily(64, 40, 3, seed=5)
        keys = mine_colliding_keys(fam, 7, 20)
        assert len(keys) == 20
        assert len(np.unique(keys)) == 20
        for key in keys:
            assert fam.word_indices(int(key))[0] == 7

    def test_target_out_of_range(self):
        fam = PartitionedHashFamily(64, 40, 3, seed=5)
        with pytest.raises(ConfigurationError):
            mine_colliding_keys(fam, 64, 5)

    def test_mining_limit(self):
        fam = PartitionedHashFamily(4, 40, 3, seed=5)
        with pytest.raises(ConfigurationError):
            mine_colliding_keys(fam, 0, 10**9, limit=10_000)


class TestSingleWordFlood:
    def test_raise_policy_detects_attack(self):
        filt = MPCBF(64, 64, 3, n_max=6, seed=2, word_overflow="raise")
        attack = mine_single_word_flood(filt)
        with pytest.raises(WordOverflowError):
            for key in attack:
                filt.insert_encoded(int(key))
        # The filter survives the failed insert in a consistent state.
        filt.check_invariants()

    def test_saturate_policy_absorbs_attack(self):
        filt = MPCBF(64, 64, 3, n_max=6, seed=2, word_overflow="saturate")
        attack = mine_single_word_flood(filt, margin=10)
        for key in attack:
            filt.insert_encoded(int(key))
        filt.check_invariants()
        # Membership semantics intact for every attack key...
        assert all(filt.query_encoded(int(k)) for k in attack)
        # ...and the attack is visible in the stats.
        assert filt.overflow_events > 0
        assert len(filt._saturated) >= 1

    def test_attack_does_not_corrupt_other_words(self):
        filt = MPCBF(64, 64, 3, n_max=6, seed=2, word_overflow="saturate")
        victims = [f"legit-{i}" for i in range(100)]
        filt.insert_many(victims)
        for key in mine_single_word_flood(filt, margin=10):
            filt.insert_encoded(int(key))
        assert all(filt.query(v) for v in victims)
        # Deleting legitimate keys still works outside the attacked word.
        deletable = [
            v
            for v in victims
            if all(
                w not in filt._saturated
                for w in filt.family.word_indices(filt.encoder.encode(v))
            )
        ]
        assert deletable, "expected most victims outside the one attacked word"
        for v in deletable:
            filt.delete(v)
        filt.check_invariants()


class TestHotKeyStream:
    def test_composition(self):
        stream = hot_key_stream(100, 10_000, 0.4, seed=1)
        assert len(stream) == 10_000
        values, counts = np.unique(stream, return_counts=True)
        assert counts.max() == 4000  # the hot key

    def test_hot_stream_counter_depth(self):
        # A very hot key drives one HCBF counter deep; the structure
        # must track the exact multiplicity and unwind it.
        filt = MPCBF(8, 256, 3, n_max=70, seed=3)
        stream = hot_key_stream(10, 60, 0.5, seed=2)
        for key in stream:
            filt.insert_encoded(int(key))
        filt.check_invariants()
        hot = int(np.unique(stream, return_counts=True)[0][
            np.argmax(np.unique(stream, return_counts=True)[1])
        ])
        depth = filt.count_encoded(hot)
        assert depth >= 30  # at least the hot multiplicity
        for _ in range(30):
            filt.delete_encoded(hot)
        filt.check_invariants()

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            hot_key_stream(10, 100, 1.5)
        with pytest.raises(ConfigurationError):
            hot_key_stream(0, 100, 0.5)
