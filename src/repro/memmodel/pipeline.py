"""Hardware throughput projection (the paper's FPGA/ASIC motivation).

The paper's speed argument is architectural, not software: a hardware
packet pipeline issues one on-chip SRAM access per cycle per port, so a
filter needing ``a`` accesses per query sustains ``ports·f / a``
queries per second.  Software timings (Fig. 8) blur this because hash
computation dominates; the authors state they were "currently building
such a hardware platform".  This model makes the projection explicit
and reproducible: given a clock, port count, and per-variant access and
hash counts (measured by :class:`~repro.memmodel.accounting.AccessStats`
or taken from the §III model), it reports sustained throughput and the
line rate supported for minimum-size packets — the router-facing number
the introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SramPipelineModel", "ThroughputEstimate"]

#: Minimum-size Ethernet frame on the wire: 64B + preamble/IFG = 84B.
_MIN_PACKET_BITS = 84 * 8


@dataclass(frozen=True)
class ThroughputEstimate:
    """Projected sustained performance of one filter variant."""

    ops_per_second: float
    bottleneck: str
    memory_bound_ops: float
    hash_bound_ops: float

    def line_rate_gbps(self, packet_bits: int = _MIN_PACKET_BITS) -> float:
        """Line rate sustained at one lookup per packet."""
        return self.ops_per_second * packet_bits / 1e9


@dataclass(frozen=True)
class SramPipelineModel:
    """A single-chip lookup pipeline with banked on-chip SRAM.

    Attributes
    ----------
    clock_hz:
        Pipeline clock (350 MHz is a typical 2013-era FPGA block RAM
        clock; ASICs clock higher).
    memory_ports:
        Independent SRAM ports usable per cycle (dual-port block RAM
        → 2).
    hash_units:
        Parallel hash engines; each computes one hash per cycle.
    """

    clock_hz: float = 350e6
    memory_ports: int = 2
    hash_units: int = 4

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError(f"clock_hz must be > 0, got {self.clock_hz}")
        if self.memory_ports < 1 or self.hash_units < 1:
            raise ConfigurationError("ports and hash units must be >= 1")

    def estimate(
        self, accesses_per_op: float, hash_calls_per_op: float
    ) -> ThroughputEstimate:
        """Sustained operations/second for a filter variant.

        The pipeline is limited by whichever resource saturates first:
        memory ports (``accesses·ops ≤ ports·f``) or hash engines
        (``hashes·ops ≤ units·f``).  Latency is hidden by pipelining,
        as in every published CBF hardware design.
        """
        if accesses_per_op <= 0 or hash_calls_per_op <= 0:
            raise ConfigurationError("per-op costs must be positive")
        memory_bound = self.memory_ports * self.clock_hz / accesses_per_op
        hash_bound = self.hash_units * self.clock_hz / hash_calls_per_op
        if memory_bound <= hash_bound:
            return ThroughputEstimate(
                ops_per_second=memory_bound,
                bottleneck="memory",
                memory_bound_ops=memory_bound,
                hash_bound_ops=hash_bound,
            )
        return ThroughputEstimate(
            ops_per_second=hash_bound,
            bottleneck="hash",
            memory_bound_ops=memory_bound,
            hash_bound_ops=hash_bound,
        )

    def speedup_over(
        self,
        accesses_a: float,
        hashes_a: float,
        accesses_b: float,
        hashes_b: float,
    ) -> float:
        """Throughput ratio of variant A over variant B on this pipeline."""
        return (
            self.estimate(accesses_a, hashes_a).ops_per_second
            / self.estimate(accesses_b, hashes_b).ops_per_second
        )
