"""Failure-injection tests for the engine's task-retry semantics."""

from __future__ import annotations

import pytest

from repro.mapreduce.engine import LocalMapReduceEngine, MapTaskFailedError


def sum_reducer(key, values, ctx):
    ctx.emit((key, sum(values)))


class FlakyMapper:
    """Raises on the first ``failures`` invocations of a chosen record."""

    def __init__(self, poison: object, failures: int) -> None:
        self.poison = poison
        self.failures = failures
        self.calls = 0

    def __call__(self, record, ctx) -> None:
        if record == self.poison and self.failures > 0:
            self.failures -= 1
            raise RuntimeError("transient task failure")
        ctx.emit(record, 1)


class TestMapTaskRetries:
    def test_transient_failure_recovers(self):
        engine = LocalMapReduceEngine(num_map_tasks=1, max_attempts=3)
        mapper = FlakyMapper("b", failures=2)
        result = engine.run(["a", "b", "a"], mapper, sum_reducer)
        assert dict(result.output) == {"a": 2, "b": 1}
        assert result.counters.get("task.failed_attempts") == 2

    def test_attempt_isolation_discards_partial_output(self):
        # The failing attempt emitted "a" before raising on "b"; those
        # partial emits must not leak into the job output.
        engine = LocalMapReduceEngine(num_map_tasks=1, max_attempts=2)
        mapper = FlakyMapper("b", failures=1)
        result = engine.run(["a", "b"], mapper, sum_reducer)
        assert dict(result.output) == {"a": 1, "b": 1}
        assert result.counters.map_output_records == 2  # not 3

    def test_permanent_failure_aborts_job(self):
        engine = LocalMapReduceEngine(num_map_tasks=1, max_attempts=2)
        mapper = FlakyMapper("b", failures=99)
        with pytest.raises(MapTaskFailedError) as excinfo:
            engine.run(["a", "b"], mapper, sum_reducer)
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_default_is_fail_fast(self):
        engine = LocalMapReduceEngine(num_map_tasks=1)
        mapper = FlakyMapper("a", failures=1)
        with pytest.raises(MapTaskFailedError):
            engine.run(["a"], mapper, sum_reducer)

    def test_only_failed_split_is_retried(self):
        # Two splits; poison lives in the second. The first split's
        # mapper runs exactly once.
        engine = LocalMapReduceEngine(num_map_tasks=2, max_attempts=3)
        seen: list[object] = []

        def mapper(record, ctx):
            seen.append(record)
            if record == "z" and seen.count("z") < 2:
                raise RuntimeError("flake")
            ctx.emit(record, 1)

        result = engine.run(["a", "z"], mapper, sum_reducer)
        assert dict(result.output) == {"a": 1, "z": 1}
        assert seen.count("a") == 1
        assert seen.count("z") == 2

    def test_invalid_max_attempts(self):
        with pytest.raises(ValueError):
            LocalMapReduceEngine(max_attempts=0)

    def test_custom_counters_not_double_counted(self):
        engine = LocalMapReduceEngine(num_map_tasks=1, max_attempts=3)
        flaky = {"left": 1}

        def mapper(record, ctx):
            ctx.counters.increment("app.seen")
            if flaky["left"] > 0:
                flaky["left"] -= 1
                raise RuntimeError("flake")
            ctx.emit(record, 1)

        result = engine.run(["a"], mapper, sum_reducer)
        # One failed attempt + one good attempt, but only the good
        # attempt's counter commits.
        assert result.counters.get("app.seen") == 1
