"""Tests for the packed counter substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)
from repro.memmodel.packed import PackedCounterArray


class TestPackedBasics:
    def test_initially_zero(self):
        arr = PackedCounterArray(100, 4)
        assert arr.to_array().sum() == 0
        assert len(arr) == 100

    def test_set_get(self):
        arr = PackedCounterArray(40, 4)
        arr.set(0, 15)
        arr.set(15, 7)  # same limb, last field
        arr.set(16, 3)  # next limb
        assert arr.get(0) == 15
        assert arr.get(15) == 7
        assert arr.get(16) == 3
        assert arr.get(1) == 0  # neighbours untouched

    def test_increment_decrement(self):
        arr = PackedCounterArray(10, 4)
        assert arr.increment(3) == 1
        assert arr.increment(3) == 2
        assert arr.decrement(3) == 1
        assert arr.decrement(3) == 0

    def test_overflow(self):
        arr = PackedCounterArray(10, 2)
        for _ in range(3):
            arr.increment(5)
        with pytest.raises(CounterOverflowError):
            arr.increment(5)

    def test_underflow(self):
        arr = PackedCounterArray(10, 4)
        with pytest.raises(CounterUnderflowError):
            arr.decrement(0)

    def test_value_range_enforced(self):
        arr = PackedCounterArray(10, 4)
        with pytest.raises(ConfigurationError):
            arr.set(0, 16)
        with pytest.raises(ConfigurationError):
            arr.set(0, -1)

    def test_index_bounds(self):
        arr = PackedCounterArray(10, 4)
        with pytest.raises(IndexError):
            arr.get(10)
        with pytest.raises(IndexError):
            arr.gather(np.array([10]))

    def test_total_bits_faithful(self):
        # 100 4-bit counters → 400 bits → 7 limbs → 448 bits stored.
        arr = PackedCounterArray(100, 4)
        assert arr.total_bits == 448
        assert arr.total_bits < 100 * 32  # far below the int32 reference

    @pytest.mark.parametrize("width", [1, 2, 4, 8, 16, 32])
    def test_all_widths(self, width):
        arr = PackedCounterArray(70, width)
        arr.set(69, arr.limit)
        assert arr.get(69) == arr.limit
        assert arr.get(68) == 0

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            PackedCounterArray(10, 3)


class TestPackedBulk:
    def test_gather_matches_scalar(self, rng):
        arr = PackedCounterArray(500, 4)
        for i in range(0, 500, 7):
            arr.set(i, i % 16)
        idx = rng.integers(0, 500, size=200)
        bulk = arr.gather(idx)
        scalar = np.array([arr.get(int(i)) for i in idx])
        np.testing.assert_array_equal(bulk, scalar)

    def test_gather_preserves_shape(self):
        arr = PackedCounterArray(64, 4)
        idx = np.arange(24).reshape(4, 6)
        assert arr.gather(idx).shape == (4, 6)

    def test_nonzero_mask(self):
        arr = PackedCounterArray(16, 4)
        arr.set(3, 1)
        mask = arr.nonzero_mask(np.array([2, 3, 4]))
        np.testing.assert_array_equal(mask, [False, True, False])

    def test_load_array_round_trip(self, rng):
        arr = PackedCounterArray(300, 4)
        values = rng.integers(0, 16, size=300)
        arr.load_array(values)
        np.testing.assert_array_equal(arr.to_array(), values)

    def test_load_array_validation(self):
        arr = PackedCounterArray(10, 4)
        with pytest.raises(ConfigurationError):
            arr.load_array(np.full(10, 16))
        with pytest.raises(ConfigurationError):
            arr.load_array(np.zeros(9))

    def test_popcount_nonzero(self):
        arr = PackedCounterArray(50, 2)
        for i in (1, 10, 49):
            arr.increment(i)
        assert arr.popcount_nonzero() == 3


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 59), st.integers(0, 15)),
        max_size=60,
    )
)
def test_packed_matches_plain_array_property(ops):
    """Packed storage behaves exactly like a plain array under writes."""
    packed = PackedCounterArray(60, 4)
    reference = np.zeros(60, dtype=int)
    for index, value in ops:
        packed.set(index, value)
        reference[index] = value
    np.testing.assert_array_equal(packed.to_array(), reference)
