"""Ablation drivers for the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation: each isolates one design
decision of the reproduction and measures what it buys.  They are
runnable from the CLI (``python -m repro.bench hcbf sizing churn hw``)
and wrapped by the ``benchmarks/bench_ablation_*.py`` pytest targets.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.heuristics import n_max_heuristic
from repro.analysis.saturation import expected_epochs_to_saturation
from repro.bench.reporting import ExperimentReport
from repro.bench.scale import Scale, current_scale
from repro.filters import build_suite
from repro.filters.cbf import CountingBloomFilter
from repro.filters.mpcbf import MPCBF
from repro.memmodel.pipeline import SramPipelineModel
from repro.workloads.churn import first_saturation_epoch, run_churn
from repro.workloads.synthetic import make_synthetic_workload

__all__ = [
    "ablation_hcbf_layout",
    "ablation_sizing",
    "ablation_churn",
    "hw_projection",
    "banked_traffic",
]


def ablation_hcbf_layout(scale: Scale | None = None) -> ExperimentReport:
    """Basic HCBF (fixed b1) vs improved HCBF (maximised b1), §III.B.3."""
    scale = scale or current_scale()
    report = ExperimentReport(
        "ablation-hcbf",
        "Basic (fixed b1) vs improved (b1=w-k*n_max) HCBF layout",
        paper="§III.B.3 claims the improved layout minimises the FPR.",
    )
    n = scale.synth_members
    workload = make_synthetic_workload(
        n_members=n, n_queries=scale.synth_queries // 2, seed=0
    )
    negatives = workload.queries[~workload.query_is_member]
    for memory in scale.synth_memories[:: max(1, len(scale.synth_memories) // 3)]:
        num_words = memory // 64
        row: dict = {"bits_per_elem": memory / n}
        for label, kwargs in [
            ("basic b1=32", dict(first_level_bits=32)),
            ("basic b1=40", dict(first_level_bits=40)),
            ("improved", dict(capacity=n)),
        ]:
            filt = MPCBF(
                num_words, 64, 3, seed=0, word_overflow="saturate", **kwargs
            )
            filt.insert_many(workload.members)
            row[label] = float(filt.query_many(negatives).mean())
            row[f"{label} b1"] = filt.first_level_bits
        report.add(**row)
    improved_better = all(
        row["improved"] <= row["basic b1=32"] for row in report.rows
    )
    report.note(f"improved <= basic(b1=32) at every point: {improved_better}")
    return report


def ablation_sizing(scale: Scale | None = None) -> ExperimentReport:
    """Eq. 11 safe n_max vs average-case sizing under saturate."""
    scale = scale or current_scale()
    report = ExperimentReport(
        "ablation-sizing",
        "Safe (Eq. 11) vs average-case n_max under the saturate policy",
        paper=(
            "Table IV's MPCBF numbers are only reachable with "
            "average-case sizing at ~10 bits/key."
        ),
    )
    rng = np.random.default_rng(0)
    n = scale.join_keys
    members = rng.integers(1, 2**62, size=n).astype(np.uint64)
    negatives = (
        rng.integers(1, 2**62, size=20 * n).astype(np.uint64)
        | np.uint64(1 << 63)
    )
    for bits_per_key in (10, 16, 24, 40):
        memory = n * bits_per_key
        num_words = memory // 64
        safe = n_max_heuristic(n, num_words)
        avg = max(1, round(n / num_words))
        row: dict = {"bits_per_key": bits_per_key}
        for label, n_max in [("safe", safe), ("average", avg)]:
            try:
                filt = MPCBF(
                    num_words, 64, 3, n_max=n_max, seed=0,
                    word_overflow="saturate",
                )
            except Exception:
                row[f"{label} fpr"] = float("nan")
                continue
            filt.insert_many(members)
            row[f"{label} fpr"] = float(filt.query_many(negatives).mean())
            row[f"{label} b1"] = filt.first_level_bits
            row[f"{label} sat%"] = round(
                100 * len(filt._saturated) / num_words, 2
            )
        report.add(**row)
    report.note(
        "average-case sizing wins on FPR at tight budgets (where the "
        "safe b1 collapses) at the cost of saturating a fraction of "
        "words — acceptable for insert-only filters, wrong for churn."
    )
    return report


def ablation_churn(scale: Scale | None = None) -> ExperimentReport:
    """Sustained churn: FPR drift and first word saturation."""
    scale = scale or current_scale()
    report = ExperimentReport(
        "ablation-churn",
        "Sustained churn: FPR drift and first word saturation",
        paper=(
            "Not in the paper — quantifies how its snapshot n_max bound "
            "behaves over a deployment lifetime."
        ),
    )
    population = min(scale.synth_members, 4000)
    num_words = max(256, (population * 60) // 64)
    epochs = 25
    safe = n_max_heuristic(population, num_words)
    configs = [
        ("CBF", CountingBloomFilter(population * 15, 3, seed=1)),
        (
            f"MPCBF n_max={safe} (safe)",
            MPCBF(
                num_words, 64, 3, n_max=safe, seed=1, word_overflow="saturate"
            ),
        ),
        (
            f"MPCBF n_max={max(1, safe - 2)} (tight)",
            MPCBF(
                num_words,
                64,
                3,
                n_max=max(1, safe - 2),
                seed=1,
                word_overflow="saturate",
            ),
        ),
    ]
    for name, filt in configs:
        result = run_churn(
            filt,
            population=population,
            epochs=epochs,
            probe_count=10_000,
            seed=1,
        )
        sat_epoch = (
            first_saturation_epoch(result)
            if result.saturated_words_by_epoch
            else None
        )
        if isinstance(filt, MPCBF):
            predicted = expected_epochs_to_saturation(
                population, num_words, filt.n_max, 0.2, horizon=500
            )
            predicted_str = (
                f"{predicted:.0f}" if predicted != float("inf") else ">500"
            )
        else:
            predicted_str = "n/a"
        report.add(
            structure=name,
            fpr_epoch0=result.fpr_by_epoch[0],
            fpr_final=result.final_fpr,
            first_saturation=(sat_epoch if sat_epoch is not None else "never"),
            model_median_epoch=predicted_str,
            saturated_words=(
                result.saturated_words_by_epoch[-1]
                if result.saturated_words_by_epoch
                else 0
            ),
            skipped_deletes=result.skipped_deletes,
        )
    report.note(
        "at this load both sizings see a first saturation almost "
        "immediately (the model's median-epoch column agrees), but the "
        "safe n_max confines it to ~0.2% of words with flat FPR while "
        "the tight n_max saturates ~6% and lets the FPR drift — the "
        "quantified trade behind the 'saturate' policy."
    )
    return report


def hw_projection(scale: Scale | None = None) -> ExperimentReport:
    """Measured access/hash counts projected onto a banked-SRAM pipeline."""
    scale = scale or current_scale()
    report = ExperimentReport(
        "hw-projection",
        "Projected lookup throughput on a banked-SRAM pipeline",
        paper=(
            "§I/§II: CBFs at line speed need k SRAM accesses per "
            "query; MPCBF's 1 access should buy ~k x throughput."
        ),
    )
    workload = make_synthetic_workload(
        n_members=scale.synth_members,
        n_queries=max(scale.synth_queries // 5, 10_000),
        seed=0,
    )
    memory = scale.synth_memories[len(scale.synth_memories) // 2]
    suite = build_suite(
        ["CBF", "PCBF-1", "PCBF-2", "MPCBF-1", "MPCBF-2"],
        memory,
        3,
        capacity=scale.synth_members,
        seed=0,
    )
    # Hardware hashes are cheap to replicate (the paper expects hashing
    # "done through hardware via FPGA"); 8 units keep the pipeline
    # memory-bound, isolating the access-count effect under test.
    model = SramPipelineModel(clock_hz=350e6, memory_ports=2, hash_units=8)
    throughput = {}
    for name, filt in suite.items():
        filt.insert_many(workload.members)
        filt.reset_stats()
        filt.query_many(workload.encoded_queries())
        stats = filt.stats.query
        est = model.estimate(
            max(stats.mean_accesses, 1e-9), max(stats.mean_hash_calls, 1e-9)
        )
        throughput[name] = est.ops_per_second
        report.add(
            structure=name,
            accesses=round(stats.mean_accesses, 2),
            hash_calls=round(stats.mean_hash_calls, 2),
            mops_per_s=round(est.ops_per_second / 1e6, 1),
            bottleneck=est.bottleneck,
            line_rate_gbps=round(est.line_rate_gbps(), 1),
        )
    report.note(
        f"projected MPCBF-1/CBF speedup: "
        f"{throughput['MPCBF-1'] / throughput['CBF']:.2f}x "
        "(paper's architectural claim: ~k x at k=3)"
    )
    return report


def banked_traffic(scale: Scale | None = None) -> ExperimentReport:
    """Banked-SRAM simulation under uniform vs hot-flow traffic.

    Goes a level below :func:`hw_projection`: instead of assuming
    accesses spread over ports, it derives every request's bank from
    the filters' own hashing over a real key stream and reports the
    makespan of the busiest bank — exposing a trade the paper never
    discusses: MPCBF's single-word locality turns an elephant flow into
    a single-bank hotspot, while CBF's k scattered probes spread it.
    """
    import numpy as np

    from repro.filters.cbf import CountingBloomFilter
    from repro.memmodel.banked import simulate_lookup_stream
    from repro.workloads.adversarial import hot_key_stream

    scale = scale or current_scale()
    report = ExperimentReport(
        "banked-traffic",
        "Bank-level lookup simulation: uniform vs hot-flow traffic",
        paper=(
            "Beyond the paper: its access model assumes uniform bank "
            "spreading; real traffic is skewed."
        ),
    )
    n = scale.synth_members
    streams = {
        "uniform": hot_key_stream(n, 10 * n, 0.0, seed=0),
        "hot 50%": hot_key_stream(n, 10 * n, 0.5, seed=0),
        "hot 90%": hot_key_stream(n, 10 * n, 0.9, seed=0),
    }
    memory = scale.synth_memories[len(scale.synth_memories) // 2]
    filters = {
        "MPCBF-1": MPCBF(
            memory // 64, 64, 3, capacity=n, seed=1, word_overflow="saturate"
        ),
        "CBF": CountingBloomFilter(memory // 4, 3, seed=1),
    }
    for stream_name, stream in streams.items():
        row: dict = {"traffic": stream_name}
        for filt_name, filt in filters.items():
            result = simulate_lookup_stream(
                filt, stream, num_banks=8, hash_units=8
            )
            row[f"{filt_name} Mops"] = round(result.ops_per_second / 1e6, 0)
            row[f"{filt_name} hot-bank"] = round(
                result.hottest_bank_share, 2
            )
        report.add(**row)
    report.note(
        "under heavy skew MPCBF's one-bank locality becomes the "
        "bottleneck while CBF degrades more gracefully — mitigations "
        "(per-flow result caches, bank-interleaved replication) are the "
        "standard fixes and orthogonal to the data structure."
    )
    return report
