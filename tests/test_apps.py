"""Tests for the packet-processing applications (LPM + flow measurement)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.flow_measurement import FlowMonitor
from repro.apps.lpm import BloomLPMTable
from repro.errors import ConfigurationError
from repro.filters.bloom import BloomFilter
from repro.filters.cbf import CountingBloomFilter
from repro.filters.mpcbf import MPCBF
from repro.workloads.traces import make_trace_workload


def mpcbf_factory(length: int) -> MPCBF:
    return MPCBF(
        256, 64, 3, n_max=8, seed=length, word_overflow="saturate"
    )


def cbf_factory(length: int) -> CountingBloomFilter:
    return CountingBloomFilter(4096, 3, seed=length)


class TestBloomLPM:
    @pytest.fixture
    def table(self) -> BloomLPMTable:
        table = BloomLPMTable(mpcbf_factory)
        # 10.0.0.0/8 -> A, 10.1.0.0/16 -> B, 10.1.2.0/24 -> C
        table.announce(10, 8, "A")
        table.announce((10 << 8) | 1, 16, "B")
        table.announce((((10 << 8) | 1) << 8) | 2, 24, "C")
        return table

    def _addr(self, a, b, c, d) -> int:
        return (a << 24) | (b << 16) | (c << 8) | d

    def test_longest_match_wins(self, table):
        assert table.lookup(self._addr(10, 1, 2, 3)).next_hop == "C"
        assert table.lookup(self._addr(10, 1, 9, 9)).next_hop == "B"
        assert table.lookup(self._addr(10, 9, 9, 9)).next_hop == "A"

    def test_no_match(self, table):
        result = table.lookup(self._addr(192, 168, 0, 1))
        assert not result.matched
        assert result.prefix_length == 0

    def test_matched_length_reported(self, table):
        assert table.lookup(self._addr(10, 1, 2, 3)).prefix_length == 24

    def test_offchip_probes_near_one(self, table):
        result = table.lookup(self._addr(10, 1, 2, 3))
        # With tiny tables and honest filters: exactly one off-chip
        # probe (the winning length), no false probes.
        assert result.offchip_probes == 1
        assert result.false_probes == 0

    def test_withdraw_route(self, table):
        table.withdraw((((10 << 8) | 1) << 8) | 2, 24)
        assert table.lookup(self._addr(10, 1, 2, 3)).next_hop == "B"
        assert table.num_routes == 2

    def test_withdraw_missing_route(self, table):
        with pytest.raises(KeyError):
            table.withdraw(99, 8)

    def test_update_next_hop(self, table):
        table.announce(10, 8, "A2")
        assert table.lookup(self._addr(10, 9, 9, 9)).next_hop == "A2"
        # Re-announce must not double-insert into the filter.
        table.withdraw(10, 8)
        assert not table.lookup(self._addr(10, 9, 9, 9)).matched

    def test_plain_bloom_withdraw_leaves_stale_bits(self):
        table = BloomLPMTable(lambda length: BloomFilter(2048, 3, seed=length))
        table.announce(10, 8, "A")
        table.withdraw(10, 8)
        result = table.lookup(self._addr(10, 0, 0, 1))
        assert not result.matched
        # The stale filter bit costs a wasted off-chip probe — the
        # operational argument for *counting* filters in routers.
        assert result.false_probes == 1

    def test_counting_withdraw_is_clean(self):
        table = BloomLPMTable(cbf_factory)
        table.announce(10, 8, "A")
        table.withdraw(10, 8)
        result = table.lookup(self._addr(10, 0, 0, 1))
        assert result.offchip_probes == 0

    def test_bulk_routing_table(self):
        rng = np.random.default_rng(7)
        table = BloomLPMTable(cbf_factory)
        routes = {}
        for _ in range(500):
            length = int(rng.integers(8, 25))
            prefix = int(rng.integers(0, 1 << length))
            routes[(prefix, length)] = f"hop-{len(routes)}"
            table.announce(prefix, length, routes[(prefix, length)])
        hits = 0
        for (prefix, length), hop in list(routes.items())[:200]:
            address = prefix << (32 - length)
            result = table.lookup(address)
            assert result.matched
            # A longer random prefix may shadow; at minimum the match
            # must be at least as long as the announced one.
            assert result.prefix_length >= length
            hits += result.next_hop == hop
        assert hits > 150

    def test_prefix_validation(self, table):
        with pytest.raises(ConfigurationError):
            table.announce(1 << 9, 8, "X")  # bits beyond length
        with pytest.raises(ConfigurationError):
            table.announce(1, 0, "X")
        with pytest.raises(ConfigurationError):
            table.lookup(1 << 40)

    def test_onchip_accounting(self, table):
        # A miss probes every length filter (longest-first, no match).
        table.lookup(self._addr(192, 168, 0, 1))
        stats = table.onchip_stats()
        assert stats.query.operations == 3  # one per length filter
        assert table.onchip_bits == sum(
            f.total_bits for f in table.filters.values()
        )


class TestFlowMonitor:
    @pytest.fixture
    def trace(self):
        return make_trace_workload(
            n_unique=2000, n_observations=30_000, n_inserted=600, seed=3
        )

    def _monitor(self) -> FlowMonitor:
        return FlowMonitor(
            CountingBloomFilter(1 << 16, 3, counter_bits=16, seed=1),
            CountingBloomFilter(1 << 14, 3, seed=2),
        )

    def test_run_produces_sane_report(self, trace):
        report = self._monitor().run(trace)
        assert report.packets_processed == trace.n_observations
        assert 0 < report.packets_counted <= trace.n_observations
        assert 0.0 <= report.membership_fpr < 0.05
        assert report.mean_relative_count_error >= 0.0
        assert len(report.heavy_hitters) == 10

    def test_counts_never_undercount(self, trace):
        monitor = self._monitor()
        monitor.run(trace)
        true_counts = np.bincount(trace.stream, minlength=trace.n_unique)
        encoded = trace.encoded_flows()
        for idx in np.nonzero(trace.members_mask)[0][:100]:
            assert monitor.estimate(int(encoded[idx])) >= true_counts[idx]

    def test_heavy_hitters_are_actually_heavy(self, trace):
        monitor = self._monitor()
        report = monitor.run(trace)
        top_estimate = report.heavy_hitters[0][1]
        true_counts = np.bincount(trace.stream, minlength=trace.n_unique)
        monitored_max = true_counts[trace.members_mask].max()
        assert top_estimate >= monitored_max

    def test_requires_counting_filters(self):
        with pytest.raises(ConfigurationError):
            FlowMonitor(BloomFilter(64, 2), BloomFilter(64, 2))

    def test_mpcbf_monitor(self, trace):
        monitor = FlowMonitor(
            MPCBF(2048, 256, 3, n_max=70, seed=1, word_overflow="saturate"),
            MPCBF(2048, 64, 3, capacity=600, seed=2, word_overflow="saturate"),
        )
        report = monitor.run(trace)
        assert report.membership_fpr < 0.05
        assert report.packets_counted > 0
