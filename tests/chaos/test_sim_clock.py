"""SimClock / SimEventLoop: virtual time under unmodified asyncio code."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.chaos import SimClock, SimEventLoop


class TestSimClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimClock()
        assert clock.time() == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.time() == 1.5
        assert clock.monotonic() == 1.5

    def test_callable_form_matches_time(self):
        # The overload seams take a bare callable.
        clock = SimClock(start=10.0)
        assert clock() == clock.time() == 10.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)


def run_sim(coro, clock=None):
    loop = SimEventLoop(clock)
    try:
        return loop, loop.run_until_complete(coro)
    finally:
        loop.close()


class TestSimEventLoop:
    def test_long_sleep_finishes_in_real_milliseconds(self):
        async def main():
            await asyncio.sleep(3600.0)
            return asyncio.get_running_loop().time()

        started = time.monotonic()
        loop, virtual = run_sim(main())
        assert virtual >= 3600.0
        assert time.monotonic() - started < 2.0

    def test_timer_ordering_follows_virtual_deadlines(self):
        fired = []

        async def main():
            loop = asyncio.get_running_loop()
            loop.call_later(30.0, fired.append, "late")
            loop.call_later(1.0, fired.append, "early")
            loop.call_later(5.0, fired.append, "mid")
            await asyncio.sleep(60.0)

        run_sim(main())
        assert fired == ["early", "mid", "late"]

    def test_wait_for_timeout_uses_virtual_time(self):
        async def main():
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.Event().wait(), timeout=120.0)
            return asyncio.get_running_loop().time()

        _, virtual = run_sim(main())
        assert virtual >= 120.0

    def test_executor_work_completes_with_clock_frozen(self):
        # While a worker thread runs, the selector polls real I/O
        # without advancing the clock, so a timer can never fire
        # "during" a computation that would have finished first.
        clock = SimClock()

        async def main():
            loop = asyncio.get_running_loop()
            before = loop.time()
            result = await loop.run_in_executor(None, lambda: 7 * 6)
            return before, loop.time(), result

        _, (before, after, result) = run_sim(main(), clock)
        assert result == 42
        assert after == before

    def test_deadlock_detection_raises_instead_of_hanging(self):
        async def main():
            # A future nobody will ever resolve: no timers, no executor
            # work, no I/O — the loop must fail fast, not spin forever.
            await asyncio.get_running_loop().create_future()

        loop = SimEventLoop()
        try:
            with pytest.raises(RuntimeError, match="deadlock"):
                loop.run_until_complete(main())
        finally:
            loop.close()
