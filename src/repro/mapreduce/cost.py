"""Cluster cost model: modelled execution time for the local engine.

The paper's Table IV reports wall-clock on a 3-node Hadoop 0.20
cluster.  Running in-process, raw wall-clock reflects Python overheads
rather than cluster behaviour, so the engine *also* reports modelled
seconds from an explicit cost model whose structure matches where a
reduce-side join actually spends time:

* map: scan the input records (disk) + mapper CPU,
* shuffle: serialise, partition, and move the *surviving* map outputs
  across the network — the term the Bloom filter shrinks,
* sort/merge + reduce: proportional to shuffled records,
* broadcast: DistributedCache payload shipped once per node.

Constants default to commodity-2013 hardware in the spirit of the
paper's testbed (1 GbE, single consumer disk); the *relative* numbers
(the % reductions in Table IV) are insensitive to the exact constants,
which EXPERIMENTS.md demonstrates with an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterCostModel", "PhaseCosts"]


@dataclass(frozen=True)
class PhaseCosts:
    """Modelled per-phase seconds for one job."""

    map_seconds: float
    shuffle_seconds: float
    reduce_seconds: float
    broadcast_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.map_seconds
            + self.shuffle_seconds
            + self.reduce_seconds
            + self.broadcast_seconds
        )


@dataclass(frozen=True)
class ClusterCostModel:
    """Tunable constants of the modelled cluster.

    Attributes
    ----------
    nodes:
        Worker nodes (3 in the paper).
    disk_bytes_per_sec:
        Sequential scan bandwidth per node.
    net_bytes_per_sec:
        Shuffle network bandwidth per node (1 GbE ≈ 117 MB/s).
    map_cpu_per_record / reduce_cpu_per_record:
        CPU seconds per record, including (de)serialisation.
    filter_cpu_per_probe:
        Extra map-side CPU per record for the Bloom-filter probe.
    """

    nodes: int = 3
    disk_bytes_per_sec: float = 100e6
    net_bytes_per_sec: float = 117e6
    map_cpu_per_record: float = 1.5e-6
    reduce_cpu_per_record: float = 2.5e-6
    filter_cpu_per_probe: float = 0.2e-6
    record_bytes: int = 24

    def job_costs(
        self,
        *,
        map_input_records: int,
        map_output_records: int,
        shuffle_bytes: int,
        reduce_input_records: int,
        broadcast_bytes: int = 0,
        filter_probes: int = 0,
    ) -> PhaseCosts:
        """Modelled seconds for one job, split by phase.

        Work divides evenly across ``nodes`` (the engine hash-partitions
        both input splits and reduce keys, so this is accurate in
        expectation).
        """
        per_node = max(1, self.nodes)
        scan_bytes = map_input_records * self.record_bytes
        map_seconds = (
            scan_bytes / self.disk_bytes_per_sec
            + map_input_records * self.map_cpu_per_record
            + filter_probes * self.filter_cpu_per_probe
        ) / per_node
        shuffle_seconds = shuffle_bytes / self.net_bytes_per_sec / per_node
        reduce_seconds = (
            reduce_input_records * self.reduce_cpu_per_record / per_node
        )
        broadcast_seconds = (
            broadcast_bytes * per_node / self.net_bytes_per_sec / per_node
        )
        return PhaseCosts(
            map_seconds=map_seconds,
            shuffle_seconds=shuffle_seconds,
            reduce_seconds=reduce_seconds,
            broadcast_seconds=broadcast_seconds,
        )
