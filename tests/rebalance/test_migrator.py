"""Engine-level migration tests: two RebalanceStates, no sockets.

Drives the source/destination state machines directly the way the
coordinator does over the wire, and pins the linearity argument: after
stream + fence + drain + commit, both filters are byte-identical to
oracles built from only the keys each side owns under the new epoch.
"""

from __future__ import annotations

import pytest

from repro.cluster.router import NodeAddress, ShardGroup
from repro.cluster.wal import WriteAheadLog
from repro.errors import ClusterError, MovedError, WrongEpochError
from repro.filters.factory import FilterSpec, build_filter
from repro.rebalance.epochs import (
    KeyRangeSet,
    RingEpoch,
    compute_moves,
    hash_key,
)
from repro.rebalance.migrator import RebalanceState
from repro.serialize import dump_filter
from repro.service.protocol import Opcode


def make_filter(seed: int = 5):
    return build_filter(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=64 * 8192,
            k=3,
            capacity=4000,
            seed=seed,
            extra={"word_overflow": "saturate"},
        )
    )


def make_group(name: str, port: int) -> ShardGroup:
    return ShardGroup(
        name=name, primary=NodeAddress("127.0.0.1", port), replicas=()
    )


def make_state(tmp_path, name: str, group: str) -> RebalanceState:
    wal = WriteAheadLog(tmp_path / f"wal-{name}", fsync="never")
    return RebalanceState(make_filter(), wal=wal, group=group)


def write(state: RebalanceState, op: Opcode, keys: list[bytes]) -> int:
    """One client mutation the way the server applies it: gate, log, apply."""
    state.gate(op, keys)
    seq = state.wal.append(op, keys)
    if op == Opcode.INSERT:
        state.filter.insert_many(keys)
    else:
        state.filter.delete_many(keys)
    return seq


def pump(src: RebalanceState, dst: RebalanceState, plan: str, scan: int) -> int:
    """Stream src→dst until the watermark reaches the source's tail."""
    while True:
        scanned, last_seq, records = src.read_records(plan, scan + 1)
        if records:
            dst.apply_records(plan, records)
        scan = max(scan, scanned)
        if scan >= last_seq:
            return scan


class TestMigrationEngine:
    def run_migration(self, tmp_path, keys, churn=()):
        """Full a→c migration; returns (src, dst, moved_ranges, epochs)."""
        e1 = RingEpoch(
            version=1,
            vnodes=16,
            groups=(make_group("a", 7801), make_group("b", 7802)),
        )
        e2 = e1.with_group(make_group("c", 7803))
        moves = [m for m in compute_moves(e1, e2) if m.src == "a"]
        ranges = KeyRangeSet(m.range for m in moves)

        src = make_state(tmp_path, "src", "a")
        dst = make_state(tmp_path, "dst", "c")
        src.install_epoch("a", e1.to_bytes())

        mine = [k for k in keys if e1.ring().owner_at(hash_key(k)) == "a"]
        for key in mine:
            write(src, Opcode.INSERT, [key])

        plan = "join-v1-v2-a-c"
        dst.begin_destination(plan, "c", e1.to_bytes())
        src.begin_source(plan, ranges, 1)
        scan = pump(src, dst, plan, 0)

        # Writes racing the stream, then the fence + final drain.
        for key in churn:
            if e1.ring().owner_at(hash_key(key)) == "a":
                write(src, Opcode.INSERT, [key])
                mine.append(key)
        fence_seq = src.fence(plan)["fence_seq"]
        scan = pump(src, dst, plan, scan)
        assert scan >= fence_seq

        src.commit_source(
            plan, "a", e2.to_bytes(), ranges=ranges, excise_through=fence_seq
        )
        dst.commit_destination(plan, "c", e2.to_bytes())
        return src, dst, ranges, (e1, e2), mine

    def test_stream_fence_commit_is_oracle_identical(self, tmp_path):
        keys = [b"key-%04d" % i for i in range(600)]
        churn = [b"late-%04d" % i for i in range(60)]
        src, dst, ranges, (e1, e2), mine = self.run_migration(
            tmp_path, keys, churn
        )

        moved = [k for k in mine if ranges.contains(hash_key(k))]
        kept = [k for k in mine if not ranges.contains(hash_key(k))]
        assert moved and kept, "need traffic on both sides of the arcs"

        oracle_src = make_filter()
        oracle_src.insert_many(kept)
        oracle_dst = make_filter()
        oracle_dst.insert_many(moved)
        assert dump_filter(src.filter) == dump_filter(oracle_src)
        assert dump_filter(dst.filter) == dump_filter(oracle_dst)
        assert src.epoch.version == 2 and dst.epoch.version == 2

    def test_destination_crash_recovery_deduplicates(self, tmp_path):
        src, dst, ranges, (e1, e2), mine = self.run_migration(
            tmp_path, [b"key-%04d" % i for i in range(200)]
        )
        # A destination rebuilt from its own WAL rediscovers the cursor
        # and acks duplicates without reapplying them.
        plan = "join-v1-v2-a-c"
        rebuilt = RebalanceState(make_filter(), wal=dst.wal, group="c")
        resp = rebuilt.begin_destination(plan, "c", b"")
        assert resp["cursor"] > 0
        replayed = rebuilt.apply_records(
            plan, [(1, Opcode.INSERT, [b"key-0000"])]
        )
        assert replayed["applied"] == 0

    def test_commit_source_is_idempotent(self, tmp_path):
        src, dst, ranges, (e1, e2), mine = self.run_migration(
            tmp_path, [b"key-%04d" % i for i in range(200)]
        )
        before = dump_filter(src.filter)
        src.commit_source(
            "join-v1-v2-a-c",
            "a",
            e2.to_bytes(),
            ranges=ranges,
            excise_through=src.wal.last_seq,
        )
        assert dump_filter(src.filter) == before


class TestGate:
    def test_inert_without_epoch(self, tmp_path):
        state = make_state(tmp_path, "n", None)
        state.gate(Opcode.INSERT, [b"anything"])  # no raise

    def test_rejects_unowned_keys_with_moved(self, tmp_path):
        e = RingEpoch(
            version=1,
            vnodes=16,
            groups=(make_group("a", 7801), make_group("b", 7802)),
        )
        state = make_state(tmp_path, "n", "a")
        state.install_epoch("a", e.to_bytes())
        ring = e.ring()
        theirs = next(
            k
            for k in (b"k-%d" % i for i in range(500))
            if ring.owner_at(hash_key(k)) == "b"
        )
        with pytest.raises(MovedError):
            state.gate(Opcode.INSERT, [theirs])
        with pytest.raises(MovedError):
            state.gate(Opcode.QUERY, [theirs])
        assert state.counters["moved_rejections"] == 2

    def test_fenced_range_rejects_writes_not_reads(self, tmp_path):
        e = RingEpoch(
            version=1,
            vnodes=16,
            groups=(make_group("a", 7801), make_group("b", 7802)),
        )
        state = make_state(tmp_path, "n", "a")
        state.install_epoch("a", e.to_bytes())
        ring = e.ring()
        mine = next(
            k
            for k in (b"k-%d" % i for i in range(500))
            if ring.owner_at(hash_key(k)) == "a"
        )
        whole_ring = KeyRangeSet.from_json([{"start": 0, "end": 0}])
        state.begin_source("p", whole_ring, 1)
        state.fence("p")
        with pytest.raises(WrongEpochError):
            state.gate(Opcode.INSERT, [mine])
        state.gate(Opcode.QUERY, [mine])  # reads stay open while fenced

    def test_fence_survives_restart(self, tmp_path):
        e = RingEpoch(
            version=1,
            vnodes=16,
            groups=(make_group("a", 7801), make_group("b", 7802)),
        )
        state = make_state(tmp_path, "n", "a")
        state.install_epoch("a", e.to_bytes())
        whole_ring = KeyRangeSet.from_json([{"start": 0, "end": 0}])
        state.begin_source("p", whole_ring, 1)
        state.fence("p")

        reborn = RebalanceState(make_filter(), wal=state.wal, group=None)
        # Both the epoch and the fence came back from disk.
        assert reborn.epoch.version == 1
        assert reborn.group == "a"
        assert reborn.holds_wal()
        mine = next(
            k
            for k in (b"k-%d" % i for i in range(500))
            if e.ring().owner_at(hash_key(k)) == "a"
        )
        with pytest.raises(WrongEpochError):
            reborn.gate(Opcode.INSERT, [mine])


class TestSourcePreconditions:
    def test_begin_source_requires_retained_history(self, tmp_path):
        state = make_state(tmp_path, "n", "a")
        for i in range(50):
            state.wal.append(Opcode.INSERT, [b"k-%d" % i])
        state.wal.sync()
        removed = state.wal.truncate_through(40)
        assert removed >= 0
        whole_ring = KeyRangeSet.from_json([{"start": 0, "end": 0}])
        if state.wal.first_seq > 1:
            with pytest.raises(ClusterError):
                state.begin_source("p", whole_ring, 1)
        # From the retained floor it always works.
        state.begin_source("p", whole_ring, state.wal.first_seq)

    def test_stale_epoch_install_is_ignored(self, tmp_path):
        e1 = RingEpoch(version=1, vnodes=16, groups=(make_group("a", 7801),))
        e3 = RingEpoch(version=3, vnodes=16, groups=(make_group("a", 7801),))
        state = make_state(tmp_path, "n", "a")
        state.install_epoch("a", e3.to_bytes())
        state.install_epoch("a", e1.to_bytes())
        assert state.epoch.version == 3
