"""Tests for the one-memory-access Bloom filter (BF-1 / BF-g)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.filters.one_access import OneAccessBloomFilter


def make(g=1, num_words=256, k=3, seed=1) -> OneAccessBloomFilter:
    return OneAccessBloomFilter(num_words, 64, k, g=g, seed=seed)


class TestOneAccessBF:
    @pytest.mark.parametrize("g", [1, 2, 3])
    def test_no_false_negatives(self, g, small_keys):
        bf = make(g=g)
        bf.insert_many(small_keys)
        assert bf.query_many(small_keys).all()
        assert all(bf.query(key) for key in small_keys)

    def test_word_bits_multiple_of_64(self):
        with pytest.raises(ConfigurationError):
            OneAccessBloomFilter(10, 60, 3)

    def test_scalar_bulk_agreement(self, small_keys, negative_keys):
        bf = make(seed=8)
        bf.insert_many(small_keys)
        bulk = bf.query_many(negative_keys[:500])
        scalar = np.array([bf.query_encoded(int(k)) for k in negative_keys[:500]])
        np.testing.assert_array_equal(bulk, scalar)

    def test_mirror_matches_memory(self, small_keys):
        bf = make()
        bf.insert_many(small_keys)
        for i in range(bf.num_words):
            word = bf.memory.peek(i)
            mirrored = sum(
                int(bf._mirror[i, limb]) << (64 * limb)
                for limb in range(bf._limbs)
            )
            assert word == mirrored

    def test_one_memory_access_per_query(self, small_keys):
        bf = make(g=1)
        bf.insert_many(small_keys)
        bf.memory.reset_counters()
        bf.reset_stats()
        for key in small_keys:
            bf.query(key)
        assert bf.stats.query.mean_accesses == pytest.approx(1.0)
        # Observed via the WordMemory substrate, not just modelled:
        assert bf.memory.reads == len(small_keys)

    def test_insert_costs_g_reads_and_writes(self):
        bf = make(g=2, num_words=4096)
        bf.memory.reset_counters()
        bf.insert("one-key")
        assert bf.memory.reads == 2
        assert bf.memory.writes == 2

    def test_higher_fpr_than_flat_bloom(self, rng):
        # BF-1's known penalty (the motivation for the HCBF hierarchy):
        # at equal memory its FPR exceeds the standard BF's.
        from repro.filters.bloom import BloomFilter

        n, memory = 4000, 1 << 16
        members = rng.integers(1, 2**62, size=n).astype(np.uint64)
        negatives = (
            rng.integers(1, 2**62, size=100_000).astype(np.uint64)
            | np.uint64(1 << 63)
        )
        bf1 = OneAccessBloomFilter(memory // 64, 64, 5, seed=2)
        flat = BloomFilter(memory, 5, seed=2)
        bf1.insert_many(members)
        flat.insert_many(members)
        fpr_bf1 = bf1.query_many(negatives).mean()
        fpr_flat = flat.query_many(negatives).mean()
        assert fpr_bf1 > fpr_flat

    def test_wide_words(self, small_keys):
        bf = OneAccessBloomFilter(64, 256, 4, seed=3)
        bf.insert_many(small_keys)
        assert bf.query_many(small_keys).all()
