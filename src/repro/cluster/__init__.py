"""Durability and horizontal scale for the serving daemon.

The serving daemon (:mod:`repro.service`) hosts one filter in one
process; this package makes that filter durable and the deployment
multi-node.  The design rhymes with the paper at every level: MPCBF
partitions hash space across words so each query touches one word; the
cluster partitions key space across shard groups so each query touches
one node; the WAL's ``batch`` fsync policy amortises the flush over a
coalesced micro-batch the same way the one-word layout amortises a row
activation over ``k`` probes.

Modules
-------
* :mod:`~repro.cluster.wal` — segmented, CRC-checked write-ahead log;
  crash recovery is ``snapshot + replay``.
* :mod:`~repro.cluster.replication` — primary→replica WAL streaming
  over the wire protocol, with async or quorum acknowledgement.
* :mod:`~repro.cluster.node` — node recovery, WAL-compacting
  snapshots, and the ``repro cluster serve`` entry point.
* :mod:`~repro.cluster.router` — consistent-hash ring (virtual nodes),
  health-checked fan-out, and the filter-shaped backend the router
  daemon hosts inside a stock :class:`~repro.service.server.
  FilterServer`.
* :mod:`~repro.cluster.cluster_client` — client-side routing over the
  same ring.
"""

from repro.cluster.cluster_client import ClusterClient
from repro.cluster.node import (
    NodeRecovery,
    WalSnapshotManager,
    recover_node,
    serve_node,
)
from repro.cluster.replication import AckMode, ReplicaLink, ReplicationManager
from repro.cluster.router import (
    HashRing,
    HealthChecker,
    NodeAddress,
    RouterBackend,
    ShardGroup,
    parse_group,
    parse_node,
)
from repro.cluster.wal import FsyncPolicy, WalCursor, WalRecord, WriteAheadLog

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "WalCursor",
    "FsyncPolicy",
    "ReplicationManager",
    "ReplicaLink",
    "AckMode",
    "NodeRecovery",
    "WalSnapshotManager",
    "recover_node",
    "serve_node",
    "HashRing",
    "ShardGroup",
    "NodeAddress",
    "RouterBackend",
    "HealthChecker",
    "parse_node",
    "parse_group",
    "ClusterClient",
]
