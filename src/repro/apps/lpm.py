"""Bloom-filter longest prefix match (Dharmapurikar et al. [4]).

The classic design: the routing table is split by prefix length; each
length gets an on-chip filter over its prefixes, and the off-chip hash
table holds the actual next hops.  A lookup queries all length filters
(in parallel in hardware), then probes the off-chip table only for the
lengths whose filter answered "maybe", starting from the longest — so
the expected number of expensive off-chip accesses is ~1 plus the
filters' false positives.

Using *counting* filters (the paper's subject) is what makes the design
operational in a real router: BGP churn constantly withdraws routes,
and a plain Bloom filter cannot delete.  The table accepts any filter
variant via a factory callable, so MPCBF (1 on-chip access per length)
and CBF (k accesses) can be compared on identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.filters.base import CountingFilterBase, FilterBase
from repro.memmodel.accounting import AccessStats

__all__ = ["LookupResult", "BloomLPMTable"]


def _prefix_key(prefix: int, length: int) -> int:
    """Encode (prefix bits, length) as one 64-bit key."""
    return (prefix << 6) | length


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one LPM lookup."""

    next_hop: object | None
    prefix_length: int
    offchip_probes: int
    false_probes: int

    @property
    def matched(self) -> bool:
        return self.next_hop is not None


class BloomLPMTable:
    """Longest-prefix-match table with per-length filters.

    Parameters
    ----------
    filter_factory:
        ``(length) -> FilterBase`` building one on-chip filter per
        prefix length present; counting variants enable withdrawals.
    max_length:
        Address width (32 for IPv4).
    """

    def __init__(
        self,
        filter_factory: Callable[[int], FilterBase],
        *,
        max_length: int = 32,
    ) -> None:
        if not 1 <= max_length <= 56:
            raise ConfigurationError(
                f"max_length must be in [1, 56] (6 bits reserved), got {max_length}"
            )
        self.max_length = max_length
        self._filter_factory = filter_factory
        self.filters: dict[int, FilterBase] = {}
        #: The "off-chip" exact table: (prefix, length) -> next hop.
        self._routes: dict[int, object] = {}
        #: Off-chip probe accounting across lookups.
        self.offchip_probes = 0
        self.false_probes = 0

    def _check_prefix(self, prefix: int, length: int) -> None:
        if not 1 <= length <= self.max_length:
            raise ConfigurationError(
                f"prefix length {length} out of range [1, {self.max_length}]"
            )
        if prefix >> length:
            raise ConfigurationError(
                f"prefix {prefix:#x} has bits beyond its length {length}"
            )

    # -- route maintenance --------------------------------------------------
    def announce(self, prefix: int, length: int, next_hop: object) -> None:
        """Install (or update) a route."""
        self._check_prefix(prefix, length)
        key = _prefix_key(prefix, length)
        if key not in self._routes:
            filt = self.filters.get(length)
            if filt is None:
                filt = self._filter_factory(length)
                self.filters[length] = filt
            filt.insert_encoded(self._encode(prefix, length))
        self._routes[key] = next_hop

    def withdraw(self, prefix: int, length: int) -> None:
        """Remove a route (requires counting filters)."""
        self._check_prefix(prefix, length)
        key = _prefix_key(prefix, length)
        if key not in self._routes:
            raise KeyError(f"no route for {prefix:#x}/{length}")
        del self._routes[key]
        filt = self.filters[length]
        if isinstance(filt, CountingFilterBase):
            filt.delete_encoded(self._encode(prefix, length))
        # Plain Bloom filters cannot delete: the stale bit stays and
        # only costs an extra off-chip probe (counted as false_probes).

    def _encode(self, prefix: int, length: int) -> int:
        from repro.hashing.encoders import encode_int

        return encode_int(_prefix_key(prefix, length))

    # -- lookup ----------------------------------------------------------------
    def lookup(self, address: int) -> LookupResult:
        """Longest-prefix-match one address."""
        if address >> self.max_length:
            raise ConfigurationError(
                f"address {address:#x} wider than {self.max_length} bits"
            )
        probes = 0
        false_probes = 0
        # Probe candidate lengths longest-first; the filter pass is the
        # on-chip part, the dict hit is the off-chip table access.
        for length in sorted(self.filters, reverse=True):
            prefix = address >> (self.max_length - length)
            filt = self.filters[length]
            if not filt.query_encoded(self._encode(prefix, length)):
                continue
            probes += 1
            self.offchip_probes += 1
            route = self._routes.get(_prefix_key(prefix, length))
            if route is not None:
                return LookupResult(
                    next_hop=route,
                    prefix_length=length,
                    offchip_probes=probes,
                    false_probes=false_probes,
                )
            false_probes += 1
            self.false_probes += 1
        return LookupResult(
            next_hop=None,
            prefix_length=0,
            offchip_probes=probes,
            false_probes=false_probes,
        )

    # -- introspection -----------------------------------------------------------
    @property
    def num_routes(self) -> int:
        return len(self._routes)

    @property
    def onchip_bits(self) -> int:
        """Total on-chip filter memory."""
        return sum(f.total_bits for f in self.filters.values())

    def onchip_stats(self) -> AccessStats:
        """Aggregated on-chip access statistics across length filters."""
        combined = AccessStats()
        for filt in self.filters.values():
            combined.merge(filt.stats)
        return combined
