"""Client library for the filter-serving daemon (sync + async).

Both clients speak the :mod:`repro.service.protocol` frames over one
TCP connection with strict request/response ordering.  The sync
:class:`FilterClient` is the ergonomic default for scripts and the CLI;
:class:`AsyncFilterClient` is for callers that want many in-flight
connections from one process (the integration tests and the throughput
benchmark drive the daemon's coalescer with it).

Connection establishment retries with full-jitter exponential backoff
(each attempt sleeps ``uniform(0, min(cap, base * 2**attempt))``) —
daemons come up asynchronously and "connect until it answers" is the
protocol every deployment script otherwise reinvents, and the jitter
keeps a fleet of clients (or a router's fan-out) from stampeding a
restarting node in lockstep.

Error frames re-raise as :class:`~repro.service.protocol.RemoteError`,
whose ``code`` preserves which :mod:`repro.errors` failure the server
hit (e.g. ``COUNTER_UNDERFLOW`` for deleting an absent key).

Overload integration (both transports, off by default):

- ``deadline_s`` gives every keyed operation a time budget.  The frame
  then travels DEADLINE-wrapped, carrying *remaining* budget (client
  deadline minus elapsed) so the server can shed the request once it
  cannot possibly answer in time.  Per-call ``deadline=`` overrides
  the default — a :class:`~repro.overload.Deadline` shared across
  retries keeps shrinking, which is the point.
- ``breaker`` installs a :class:`~repro.overload.CircuitBreaker` in
  front of the transport.  ``OVERLOADED`` answers and transport
  failures count as failures; any other server answer (including
  application errors) proves the node is serving and counts as
  success.  While open, calls fail locally with
  :class:`~repro.errors.OverloadedError` — no packet is sent.

Columnar fastpath (the ``*_many64`` methods): keys are pre-encoded
client-side with the library's vectorised FNV-1a encoders and shipped
as a packed little-endian ``uint64`` column (BULK64_* frames, protocol
version 2).  The server decodes with a zero-copy view and skips
re-encoding entirely, and responses unpack vectorised
(``unpack_bools_array`` over the reply buffer — no per-bit Python
loop).  Support is negotiated lazily with one HELLO exchange; against
a server without the feature, str/bytes inputs silently fall back to
the legacy BATCH path (byte-identical results, since the server then
runs the same encoder), while already-encoded ``uint64`` arrays cannot
be downgraded and raise.  Pre-encoding assumes the server's filter
uses the default :class:`~repro.hashing.encoders.KeyEncoder`; a server
hosting a custom encoder needs legacy frames.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time

import numpy as np

from repro.errors import UnsupportedOperationError
from repro.hashing.encoders import KeyEncoder, encode_str_array
from repro.overload import Deadline
from repro.service.protocol import (
    FEATURE_BULK64,
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_BULK64,
    SUPPORTED_VERSIONS,
    ErrorCode,
    FrameDecoder,
    Opcode,
    ProtocolError,
    RemoteError,
    decode_error_body,
    decode_hello_body,
    encode_batch_body,
    encode_bulk64_body,
    encode_deadline_body,
    encode_frame,
    encode_hello_body,
    read_frame,
    unpack_bools,
    unpack_bools_array,
    unpack_counts64,
)

__all__ = ["FilterClient", "AsyncFilterClient"]

#: Backoff delays never exceed this many seconds, jitter included.
BACKOFF_CAP_S = 2.0


def _jittered_delay(base_s: float, attempt: int, rng=random) -> float:
    """Full-jitter exponential backoff delay for retry ``attempt`` (0-based).

    ``rng`` defaults to the module-level :mod:`random` generator; the
    chaos harness injects a seeded ``random.Random`` so retry timing is
    reproducible from the schedule seed.
    """
    return rng.uniform(0.0, min(BACKOFF_CAP_S, base_s * (2 ** (attempt + 1))))


def _to_bytes(key) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    raise TypeError(f"wire keys must be str or bytes, got {type(key).__name__}")


#: Stateless vectorised encoder; one instance serves every client.  It
#: is the same default the server's filters construct, which is what
#: makes client-side pre-encoding bit-identical to the legacy path.
_ENCODER = KeyEncoder()


def _encode_keys64(keys) -> np.ndarray:
    """Pre-encode keys to the u64 column a BULK64 frame carries.

    A ``uint64`` ndarray passes through untouched (already encoded);
    anything else normalises to bytes first so the encoding matches
    what the server would compute for the same legacy frame.  Byte
    keys take the vectorised FNV fold (:func:`encode_str_array`)
    unless one ends in a NUL — NumPy ``S`` arrays strip trailing NULs,
    so those keys fall back to the exact scalar path.
    """
    if isinstance(keys, np.ndarray) and keys.dtype == np.uint64:
        return keys
    raw = [_to_bytes(k) for k in keys]
    if raw and not any(k[-1:] == b"\x00" for k in raw):
        arr = np.array(raw, dtype=np.bytes_)
        if arr.dtype.itemsize:
            return encode_str_array(arr)
    return _ENCODER.encode_many(raw)


class _BaseClient:
    """Request encoding + overload bookkeeping shared by both transports.

    Subclasses set ``deadline_s`` and ``breaker`` in their constructors
    (both ``None`` by default — no behaviour change for existing users).
    """

    deadline_s: float | None = None
    breaker = None
    #: Tri-state bulk64 capability: None until the first HELLO exchange.
    _bulk64: bool | None = None

    def _resolve_deadline(self, deadline) -> "Deadline | None":
        if deadline is not None:
            return deadline
        if self.deadline_s is not None:
            return Deadline.after(self.deadline_s)
        return None

    @staticmethod
    def _wrap_deadline(
        frame_op: Opcode,
        body: bytes,
        deadline,
        *,
        version: int = PROTOCOL_VERSION,
    ) -> bytes:
        """Encode the request, DEADLINE-wrapped when a budget applies.

        The wrapped budget is read at *send* time, so whatever the
        caller already spent (breaker gate, connection backoff, earlier
        attempts against another node) has been deducted.  ``version``
        stamps the outer frame — bulk64 requests travel as protocol
        version 2 so a v1-only server rejects them cleanly.
        """
        if deadline is None:
            return encode_frame(frame_op, body, version=version)
        return encode_frame(
            Opcode.DEADLINE,
            encode_deadline_body(deadline.remaining_us(), frame_op, body),
            version=version,
        )

    @staticmethod
    def _reject_downgrade(keys) -> None:
        """Pre-encoded columns cannot ride the legacy byte-key path."""
        if isinstance(keys, np.ndarray):
            raise UnsupportedOperationError(
                "server does not support bulk64 frames and pre-encoded "
                "u64 keys cannot be downgraded to byte keys; pass the "
                "original str/bytes keys instead"
            )

    @staticmethod
    def _hello_verdict(version: int, features: int) -> bool:
        return (
            version >= PROTOCOL_VERSION_BULK64
            and bool(features & FEATURE_BULK64)
        )

    def _breaker_verdict(self, opcode: Opcode, body: bytes) -> None:
        """Classify one reply for the breaker; raises on ERROR frames."""
        if opcode == Opcode.ERROR:
            code, message = decode_error_body(body)
            if self.breaker is not None:
                if code == ErrorCode.OVERLOADED:
                    self.breaker.record_failure()
                else:
                    # The node answered; even an application error means
                    # it is serving — only overload opens the breaker.
                    self.breaker.record_success()
            raise RemoteError(code, message)
        if self.breaker is not None:
            self.breaker.record_success()


class FilterClient(_BaseClient):
    """Blocking client; usable as a context manager.

    Parameters
    ----------
    host, port:
        Daemon address.
    timeout_s:
        Socket timeout for each call.
    retries, backoff_s:
        Connection attempts and the base retry delay.  Attempt ``n``
        sleeps ``uniform(0, min(2.0, backoff_s * 2**n))`` — full-jitter
        exponential backoff.
    deadline_s:
        Default time budget per keyed operation; requests travel
        DEADLINE-wrapped so the server can shed them once stale.
        ``None`` (default) sends bare frames, as before.
    breaker:
        Optional :class:`~repro.overload.CircuitBreaker` gating every
        operation; ``None`` (default) disables breaking.
    transport:
        Connection factory (default: real TCP via
        :data:`repro.service.transport.REAL_TRANSPORT`).
    rng:
        Random source for backoff jitter (default: the module-level
        :mod:`random` generator); inject a seeded ``random.Random``
        for reproducible retry timing.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7757,
        *,
        timeout_s: float = 10.0,
        retries: int = 8,
        backoff_s: float = 0.05,
        deadline_s: float | None = None,
        breaker=None,
        transport=None,
        rng=None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.deadline_s = deadline_s
        self.breaker = breaker
        if transport is None:
            from repro.service.transport import REAL_TRANSPORT

            transport = REAL_TRANSPORT
        self.transport = transport
        self._rng = rng if rng is not None else random
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder()

    # -- connection -----------------------------------------------------
    def connect(self) -> "FilterClient":
        """Connect with retry/backoff; returns self for chaining."""
        if self._sock is not None:
            return self
        last_error: Exception | None = None
        for attempt in range(max(1, self.retries)):
            try:
                self._sock = self.transport.create_connection(
                    self.host, self.port, timeout_s=self.timeout_s
                )
                self._decoder = FrameDecoder()
                return self
            except OSError as exc:
                last_error = exc
                time.sleep(
                    _jittered_delay(self.backoff_s, attempt, self._rng)
                )
        raise ConnectionError(
            f"cannot reach repro service at {self.host}:{self.port}: {last_error}"
        )

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "FilterClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport ------------------------------------------------------
    def _call(self, frame: bytes) -> tuple[Opcode, bytes]:
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(frame)
            while True:
                for parsed in self._decoder.frames():
                    return parsed
                chunk = self._sock.recv(65536)
                if not chunk:
                    raise ConnectionError("server closed the connection")
                self._decoder.feed(chunk)
        except OSError:
            # A timed-out or failed call leaves the strict request/
            # response stream desynchronised — the reply may arrive
            # later and would answer the *next* request.  Drop the
            # connection so a retry starts on a clean stream.
            self.close()
            raise

    def _request(
        self,
        op: Opcode,
        body: bytes,
        expected: Opcode,
        *,
        deadline=None,
        use_default_deadline: bool = True,
        version: int = PROTOCOL_VERSION,
    ) -> bytes:
        """One gated exchange: breaker → deadline wrap → send → verdict."""
        if use_default_deadline:
            deadline = self._resolve_deadline(deadline)
        if self.breaker is not None:
            self.breaker.allow()
        try:
            opcode, reply = self._call(
                self._wrap_deadline(op, body, deadline, version=version)
            )
        except OSError:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        self._breaker_verdict(opcode, reply)
        if opcode != expected:
            raise ProtocolError(
                f"expected {expected.name} response, got {opcode.name}"
            )
        return reply

    # -- operations -----------------------------------------------------
    def ping(self) -> bool:
        self._request(Opcode.PING, b"", Opcode.OK, use_default_deadline=False)
        return True

    def insert(self, key, *, deadline=None) -> None:
        self._request(
            Opcode.INSERT, _to_bytes(key), Opcode.OK, deadline=deadline
        )

    def query(self, key, *, deadline=None) -> bool:
        body = self._request(
            Opcode.QUERY, _to_bytes(key), Opcode.BOOL, deadline=deadline
        )
        return bool(body[0])

    def delete(self, key, *, deadline=None) -> None:
        self._request(
            Opcode.DELETE, _to_bytes(key), Opcode.OK, deadline=deadline
        )

    def insert_many(self, keys, *, deadline=None) -> None:
        self._request(
            Opcode.BATCH,
            encode_batch_body(Opcode.INSERT, [_to_bytes(k) for k in keys]),
            Opcode.OK,
            deadline=deadline,
        )

    def query_many(self, keys, *, deadline=None) -> list[bool]:
        body = self._request(
            Opcode.BATCH,
            encode_batch_body(Opcode.QUERY, [_to_bytes(k) for k in keys]),
            Opcode.BITMAP,
            deadline=deadline,
        )
        return unpack_bools(body)

    def delete_many(self, keys, *, deadline=None) -> None:
        self._request(
            Opcode.BATCH,
            encode_batch_body(Opcode.DELETE, [_to_bytes(k) for k in keys]),
            Opcode.OK,
            deadline=deadline,
        )

    # -- columnar fastpath ----------------------------------------------
    def hello(self) -> tuple[int, int]:
        """One capability exchange → (server version, feature bits)."""
        body = self._request(
            Opcode.HELLO,
            encode_hello_body(max(SUPPORTED_VERSIONS), FEATURE_BULK64),
            Opcode.HELLO,
            use_default_deadline=False,
        )
        return decode_hello_body(body)

    def bulk64_supported(self) -> bool:
        """Whether the server speaks bulk64 (one lazy HELLO, cached)."""
        if self._bulk64 is None:
            try:
                self._bulk64 = self._hello_verdict(*self.hello())
            except (RemoteError, ProtocolError, ConnectionError, OSError):
                self._bulk64 = False
        return self._bulk64

    def insert_many64(self, keys, *, deadline=None) -> None:
        """Bulk insert over the columnar fastpath (keys encoded here)."""
        if not self.bulk64_supported():
            self._reject_downgrade(keys)
            return self.insert_many(keys, deadline=deadline)
        self._request(
            Opcode.BULK64_INSERT,
            encode_bulk64_body(_encode_keys64(keys)),
            Opcode.OK,
            deadline=deadline,
            version=PROTOCOL_VERSION_BULK64,
        )

    def query_many64(self, keys, *, deadline=None) -> np.ndarray:
        """Bulk query over the columnar fastpath; returns a bool array."""
        if not self.bulk64_supported():
            self._reject_downgrade(keys)
            return np.asarray(self.query_many(keys, deadline=deadline), bool)
        body = self._request(
            Opcode.BULK64_QUERY,
            encode_bulk64_body(_encode_keys64(keys)),
            Opcode.BITMAP,
            deadline=deadline,
            version=PROTOCOL_VERSION_BULK64,
        )
        return unpack_bools_array(body)

    def delete_many64(self, keys, *, deadline=None) -> None:
        """Bulk delete over the columnar fastpath (keys encoded here)."""
        if not self.bulk64_supported():
            self._reject_downgrade(keys)
            return self.delete_many(keys, deadline=deadline)
        self._request(
            Opcode.BULK64_DELETE,
            encode_bulk64_body(_encode_keys64(keys)),
            Opcode.OK,
            deadline=deadline,
            version=PROTOCOL_VERSION_BULK64,
        )

    def count_many64(self, keys, *, deadline=None) -> np.ndarray:
        """Bulk multiplicity estimates; columnar only (no legacy twin)."""
        if not self.bulk64_supported():
            raise UnsupportedOperationError(
                "server does not support bulk64 COUNT frames"
            )
        body = self._request(
            Opcode.BULK64_COUNT,
            encode_bulk64_body(_encode_keys64(keys)),
            Opcode.COUNTS64,
            deadline=deadline,
            version=PROTOCOL_VERSION_BULK64,
        )
        return unpack_counts64(body)

    def stats(self) -> dict:
        body = self._request(
            Opcode.STATS, b"", Opcode.JSON, use_default_deadline=False
        )
        return json.loads(body.decode("utf-8"))

    def snapshot(self) -> dict:
        body = self._request(
            Opcode.SNAPSHOT, b"", Opcode.JSON, use_default_deadline=False
        )
        return json.loads(body.decode("utf-8"))

    def call(self, opcode: Opcode, body: bytes = b"") -> tuple[Opcode, bytes]:
        """Send one raw frame; returns ``(opcode, body)`` of the reply.

        Error frames raise :class:`RemoteError` like every typed call.
        The escape hatch the cluster tooling (epoch fetches, migration
        verbs) uses for opcodes without a dedicated method.
        """
        reply_op, reply_body = self._call(encode_frame(opcode, body))
        if reply_op == Opcode.ERROR:
            code, message = decode_error_body(reply_body)
            raise RemoteError(code, message)
        return reply_op, reply_body


class AsyncFilterClient(_BaseClient):
    """Asyncio client mirroring :class:`FilterClient`'s surface."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7757,
        *,
        retries: int = 8,
        backoff_s: float = 0.05,
        deadline_s: float | None = None,
        breaker=None,
        transport=None,
        rng=None,
    ) -> None:
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff_s = backoff_s
        self.deadline_s = deadline_s
        self.breaker = breaker
        if transport is None:
            from repro.service.transport import REAL_TRANSPORT

            transport = REAL_TRANSPORT
        self.transport = transport
        self._rng = rng if rng is not None else random
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "AsyncFilterClient":
        if self._writer is not None:
            return self
        last_error: Exception | None = None
        for attempt in range(max(1, self.retries)):
            try:
                (
                    self._reader,
                    self._writer,
                ) = await self.transport.open_connection(self.host, self.port)
                return self
            except OSError as exc:
                last_error = exc
                await asyncio.sleep(
                    _jittered_delay(self.backoff_s, attempt, self._rng)
                )
        raise ConnectionError(
            f"cannot reach repro service at {self.host}:{self.port}: {last_error}"
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncFilterClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _call(self, frame: bytes) -> tuple[Opcode, bytes]:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        try:
            self._writer.write(frame)
            await self._writer.drain()
            parsed = await read_frame(self._reader)
        except OSError:
            # Same desync hazard as the sync client: never reuse a
            # stream whose in-flight reply was abandoned.
            await self.close()
            raise
        if parsed is None:
            await self.close()
            raise ConnectionError("server closed the connection")
        return parsed

    async def _request(
        self,
        op: Opcode,
        body: bytes,
        expected: Opcode,
        *,
        deadline=None,
        use_default_deadline: bool = True,
        version: int = PROTOCOL_VERSION,
    ) -> bytes:
        """Async twin of :meth:`FilterClient._request`."""
        if use_default_deadline:
            deadline = self._resolve_deadline(deadline)
        if self.breaker is not None:
            self.breaker.allow()
        try:
            opcode, reply = await self._call(
                self._wrap_deadline(op, body, deadline, version=version)
            )
        except OSError:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        self._breaker_verdict(opcode, reply)
        if opcode != expected:
            raise ProtocolError(
                f"expected {expected.name} response, got {opcode.name}"
            )
        return reply

    async def ping(self) -> bool:
        await self._request(
            Opcode.PING, b"", Opcode.OK, use_default_deadline=False
        )
        return True

    async def insert(self, key, *, deadline=None) -> None:
        await self._request(
            Opcode.INSERT, _to_bytes(key), Opcode.OK, deadline=deadline
        )

    async def query(self, key, *, deadline=None) -> bool:
        body = await self._request(
            Opcode.QUERY, _to_bytes(key), Opcode.BOOL, deadline=deadline
        )
        return bool(body[0])

    async def delete(self, key, *, deadline=None) -> None:
        await self._request(
            Opcode.DELETE, _to_bytes(key), Opcode.OK, deadline=deadline
        )

    async def insert_many(self, keys, *, deadline=None) -> None:
        await self._request(
            Opcode.BATCH,
            encode_batch_body(Opcode.INSERT, [_to_bytes(k) for k in keys]),
            Opcode.OK,
            deadline=deadline,
        )

    async def query_many(self, keys, *, deadline=None) -> list[bool]:
        body = await self._request(
            Opcode.BATCH,
            encode_batch_body(Opcode.QUERY, [_to_bytes(k) for k in keys]),
            Opcode.BITMAP,
            deadline=deadline,
        )
        return unpack_bools(body)

    async def delete_many(self, keys, *, deadline=None) -> None:
        await self._request(
            Opcode.BATCH,
            encode_batch_body(Opcode.DELETE, [_to_bytes(k) for k in keys]),
            Opcode.OK,
            deadline=deadline,
        )

    # -- columnar fastpath ----------------------------------------------
    async def hello(self) -> tuple[int, int]:
        """One capability exchange → (server version, feature bits)."""
        body = await self._request(
            Opcode.HELLO,
            encode_hello_body(max(SUPPORTED_VERSIONS), FEATURE_BULK64),
            Opcode.HELLO,
            use_default_deadline=False,
        )
        return decode_hello_body(body)

    async def bulk64_supported(self) -> bool:
        """Whether the server speaks bulk64 (one lazy HELLO, cached)."""
        if self._bulk64 is None:
            try:
                self._bulk64 = self._hello_verdict(*await self.hello())
            except (RemoteError, ProtocolError, ConnectionError, OSError):
                self._bulk64 = False
        return self._bulk64

    async def insert_many64(self, keys, *, deadline=None) -> None:
        """Bulk insert over the columnar fastpath (keys encoded here)."""
        if not await self.bulk64_supported():
            self._reject_downgrade(keys)
            return await self.insert_many(keys, deadline=deadline)
        await self._request(
            Opcode.BULK64_INSERT,
            encode_bulk64_body(_encode_keys64(keys)),
            Opcode.OK,
            deadline=deadline,
            version=PROTOCOL_VERSION_BULK64,
        )

    async def query_many64(self, keys, *, deadline=None) -> np.ndarray:
        """Bulk query over the columnar fastpath; returns a bool array."""
        if not await self.bulk64_supported():
            self._reject_downgrade(keys)
            return np.asarray(
                await self.query_many(keys, deadline=deadline), bool
            )
        body = await self._request(
            Opcode.BULK64_QUERY,
            encode_bulk64_body(_encode_keys64(keys)),
            Opcode.BITMAP,
            deadline=deadline,
            version=PROTOCOL_VERSION_BULK64,
        )
        return unpack_bools_array(body)

    async def delete_many64(self, keys, *, deadline=None) -> None:
        """Bulk delete over the columnar fastpath (keys encoded here)."""
        if not await self.bulk64_supported():
            self._reject_downgrade(keys)
            return await self.delete_many(keys, deadline=deadline)
        await self._request(
            Opcode.BULK64_DELETE,
            encode_bulk64_body(_encode_keys64(keys)),
            Opcode.OK,
            deadline=deadline,
            version=PROTOCOL_VERSION_BULK64,
        )

    async def count_many64(self, keys, *, deadline=None) -> np.ndarray:
        """Bulk multiplicity estimates; columnar only (no legacy twin)."""
        if not await self.bulk64_supported():
            raise UnsupportedOperationError(
                "server does not support bulk64 COUNT frames"
            )
        body = await self._request(
            Opcode.BULK64_COUNT,
            encode_bulk64_body(_encode_keys64(keys)),
            Opcode.COUNTS64,
            deadline=deadline,
            version=PROTOCOL_VERSION_BULK64,
        )
        return unpack_counts64(body)

    async def stats(self) -> dict:
        body = await self._request(
            Opcode.STATS, b"", Opcode.JSON, use_default_deadline=False
        )
        return json.loads(body.decode("utf-8"))

    async def snapshot(self) -> dict:
        body = await self._request(
            Opcode.SNAPSHOT, b"", Opcode.JSON, use_default_deadline=False
        )
        return json.loads(body.decode("utf-8"))

    async def call(
        self, opcode: Opcode, body: bytes = b""
    ) -> tuple[Opcode, bytes]:
        """Async twin of :meth:`FilterClient.call`."""
        reply_op, reply_body = await self._call(encode_frame(opcode, body))
        if reply_op == Opcode.ERROR:
            code, message = decode_error_body(reply_body)
            raise RemoteError(code, message)
        return reply_op, reply_body
