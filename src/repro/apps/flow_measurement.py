"""Flow measurement: the §IV.D scenario as an application.

"This setting simulates a flow measurement system that measures the
Internet traffic of 200K flows in CBF" — the monitor keeps a counting
filter over the monitored flow set and, because the filter *counts*,
can also estimate per-flow packet totals without a per-flow hash table.
The report compares the estimates against ground truth and surfaces the
two error sources: membership false positives (unmonitored flows
counted) and counter collisions (estimates are upper bounds).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.base import CountingFilterBase
from repro.workloads.traces import FlowTrace

__all__ = ["FlowReport", "FlowMonitor"]


@dataclass(frozen=True)
class FlowReport:
    """Accuracy summary of one measurement run."""

    packets_processed: int
    packets_counted: int
    membership_fpr: float
    mean_relative_count_error: float
    max_count_overestimate: int
    heavy_hitters: list[tuple[int, int]]

    @property
    def counted_fraction(self) -> float:
        return (
            self.packets_counted / self.packets_processed
            if self.packets_processed
            else 0.0
        )


class FlowMonitor:
    """Per-flow packet counting over a monitored flow set.

    Parameters
    ----------
    filter_obj:
        Any counting filter; each arriving packet of a monitored flow
        increments the flow's counters, so ``count(flow)`` estimates
        its packet total (an upper bound, never an undercount).
    membership:
        A second instance of the same filter class holding only the
        monitored-set membership (the paper's filter); splitting the
        two roles keeps the membership FPR independent of traffic
        volume.
    """

    def __init__(
        self,
        filter_obj: CountingFilterBase,
        membership: CountingFilterBase,
    ) -> None:
        if not isinstance(filter_obj, CountingFilterBase) or not isinstance(
            membership, CountingFilterBase
        ):
            raise ConfigurationError("FlowMonitor needs counting filters")
        self.counter = filter_obj
        self.membership = membership
        self._monitored: np.ndarray | None = None

    def monitor(self, flows: np.ndarray) -> None:
        """Register the monitored flow set (encoded keys)."""
        self.membership.insert_many(flows)
        self._monitored = np.asarray(flows, dtype=np.uint64)

    def process(self, packets: np.ndarray) -> int:
        """Feed a packet stream (encoded flow keys); returns # counted.

        Packets whose flow passes the membership filter are counted —
        including membership false positives, exactly the error the
        paper measures.
        """
        packets = np.asarray(packets, dtype=np.uint64)
        monitored = self.membership.query_many(packets)
        counted = packets[monitored]
        self.counter.insert_many(counted)
        return int(monitored.sum())

    def estimate(self, flow: int) -> int:
        """Estimated packet count of one (encoded) flow."""
        return self.counter.count_encoded(int(flow))

    def run(self, trace: FlowTrace, *, top_k: int = 10) -> FlowReport:
        """Measure a whole trace and score the result."""
        self.monitor(trace.member_keys())
        packets = trace.query_keys()
        counted = self.process(packets)

        truth_member = trace.query_is_member()
        nonmember_counted = counted - int(truth_member.sum())
        n_nonmember = int((~truth_member).sum())
        membership_fpr = (
            nonmember_counted / n_nonmember if n_nonmember else 0.0
        )

        # Per-flow accuracy over the monitored set.
        encoded = trace.encoded_flows()
        true_counts = np.bincount(trace.stream, minlength=trace.n_unique)
        monitored_idx = np.nonzero(trace.members_mask)[0]
        rel_errors = []
        max_over = 0
        estimates = []
        for idx in monitored_idx:
            est = self.estimate(int(encoded[idx]))
            true = int(true_counts[idx])
            estimates.append((int(encoded[idx]), est))
            over = est - true
            max_over = max(max_over, over)
            if true > 0:
                rel_errors.append(over / true)
        heavy = sorted(estimates, key=lambda kv: kv[1], reverse=True)[:top_k]
        return FlowReport(
            packets_processed=len(packets),
            packets_counted=counted,
            membership_fpr=float(membership_fpr),
            mean_relative_count_error=float(np.mean(rel_errors)) if rel_errors else 0.0,
            max_count_overestimate=int(max_over),
            heavy_hitters=heavy,
        )
