"""Wire-format tests: encode/decode symmetry and malformed-frame fuzz."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    CounterOverflowError,
    CounterUnderflowError,
    ReproError,
    UnsupportedOperationError,
    WordOverflowError,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ErrorCode,
    FrameDecoder,
    Opcode,
    ProtocolError,
    decode_error_body,
    decode_payload,
    encode_batch_body,
    encode_error_body,
    encode_frame,
    error_code_for,
    pack_bools,
    parse_request,
    unpack_bools,
)


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame(Opcode.INSERT, b"alice")
        decoder = FrameDecoder()
        decoder.feed(frame)
        [(opcode, body)] = list(decoder.frames())
        assert opcode == Opcode.INSERT
        assert body == b"alice"

    def test_incremental_feed(self):
        frame = encode_frame(Opcode.QUERY, b"bob") * 3
        decoder = FrameDecoder()
        collected = []
        for i in range(len(frame)):
            decoder.feed(frame[i : i + 1])
            collected.extend(decoder.frames())
        assert len(collected) == 3
        assert all(op == Opcode.QUERY and body == b"bob" for op, body in collected)

    def test_bad_version_rejected(self):
        payload = struct.pack("<BB", PROTOCOL_VERSION + 1, Opcode.PING)
        with pytest.raises(ProtocolError, match="version"):
            decode_payload(payload)

    def test_unknown_opcode_rejected(self):
        payload = struct.pack("<BB", PROTOCOL_VERSION, 0x66)
        with pytest.raises(ProtocolError, match="opcode"):
            decode_payload(payload)

    def test_oversized_frame_rejected_before_body(self):
        decoder = FrameDecoder()
        decoder.feed(struct.pack("<I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="frame limit"):
            list(decoder.frames())


class TestRequests:
    def test_single_key_ops(self):
        for op in (Opcode.INSERT, Opcode.QUERY, Opcode.DELETE):
            request = parse_request(op, b"key-1")
            assert request.op == op
            assert request.keys == [b"key-1"]
            assert request.single

    def test_empty_key_rejected(self):
        with pytest.raises(ProtocolError, match="empty key"):
            parse_request(Opcode.INSERT, b"")

    def test_batch_round_trip(self):
        keys = [f"k{i}".encode() for i in range(100)] + [b"\x00\xff binary"]
        body = encode_batch_body(Opcode.QUERY, keys)
        request = parse_request(Opcode.BATCH, body)
        assert request.op == Opcode.QUERY
        assert request.keys == keys
        assert not request.single

    def test_batch_bad_subop(self):
        body = struct.pack("<BI", Opcode.STATS, 0)
        with pytest.raises(ProtocolError, match="sub-op"):
            parse_request(Opcode.BATCH, body)

    def test_batch_truncated_key(self):
        body = struct.pack("<BI", Opcode.INSERT, 1) + struct.pack("<H", 10) + b"ab"
        with pytest.raises(ProtocolError, match="truncated"):
            parse_request(Opcode.BATCH, body)

    def test_batch_trailing_garbage(self):
        body = encode_batch_body(Opcode.INSERT, [b"x"]) + b"junk"
        with pytest.raises(ProtocolError, match="trailing"):
            parse_request(Opcode.BATCH, body)

    def test_control_ops_not_keyed(self):
        with pytest.raises(ProtocolError):
            parse_request(Opcode.STATS, b"")


class TestBodies:
    def test_bools_round_trip(self):
        for pattern in ([], [True], [False] * 9, [True, False] * 37):
            assert unpack_bools(pack_bools(pattern)) == pattern

    def test_error_body_round_trip(self):
        body = encode_error_body(ErrorCode.COUNTER_UNDERFLOW, "nope")
        code, message = decode_error_body(body)
        assert code == ErrorCode.COUNTER_UNDERFLOW
        assert message == "nope"

    def test_error_code_mapping(self):
        assert error_code_for(CounterOverflowError(1, 15)) == ErrorCode.COUNTER_OVERFLOW
        assert error_code_for(CounterUnderflowError(1)) == ErrorCode.COUNTER_UNDERFLOW
        assert error_code_for(WordOverflowError(0, 8)) == ErrorCode.WORD_OVERFLOW
        assert error_code_for(UnsupportedOperationError("x")) == ErrorCode.UNSUPPORTED
        assert error_code_for(ProtocolError("x")) == ErrorCode.PROTOCOL
        assert error_code_for(ReproError("x")) == ErrorCode.INTERNAL
        assert error_code_for(RuntimeError("x")) == ErrorCode.INTERNAL


class TestFuzz:
    """Arbitrary bytes must produce ProtocolError or clean parses — never
    any other exception.  (The server turns ProtocolError into an error
    frame; anything else would be a crash.)"""

    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=256))
    def test_decoder_never_crashes(self, data):
        decoder = FrameDecoder()
        decoder.feed(data)
        try:
            for opcode, body in decoder.frames():
                if opcode in (
                    Opcode.INSERT,
                    Opcode.QUERY,
                    Opcode.DELETE,
                    Opcode.BATCH,
                ):
                    parse_request(opcode, body)
        except ProtocolError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=128))
    def test_batch_body_parse_never_crashes(self, body):
        try:
            parse_request(Opcode.BATCH, body)
        except ProtocolError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=4, max_size=64))
    def test_corrupted_valid_frame_never_crashes(self, noise):
        frame = bytearray(encode_frame(Opcode.BATCH, encode_batch_body(
            Opcode.INSERT, [b"aa", b"bb", b"cc"]
        )))
        for i, byte in enumerate(noise):
            frame[byte % len(frame)] ^= (i % 255) + 1
        decoder = FrameDecoder()
        decoder.feed(bytes(frame))
        try:
            for opcode, body in decoder.frames():
                if opcode == Opcode.BATCH:
                    parse_request(opcode, body)
        except ProtocolError:
            pass
