"""Load management for the serving stack (``repro.overload``).

The daemon's north star is heavy traffic from many clients, and heavy
traffic always eventually exceeds capacity.  This package makes the
behaviour past that point *explicit and bounded* instead of emergent:

- :mod:`repro.overload.admission` — cost-aware token buckets and the
  bounded-inflight :class:`AdmissionController` the server consults
  before a request touches the coalescer queue.  Shed requests are
  answered with an ``OVERLOADED`` error frame carrying a retry-after
  hint, *before* any WAL record or filter state exists for them.
- :mod:`repro.overload.breaker` — a client-side
  :class:`CircuitBreaker` with half-open probing, so a fleet of
  clients stops hammering a saturated or dead node instead of
  stampeding it in lockstep.
- :mod:`repro.overload.deadline` — the :class:`Deadline` budget that
  travels with a request (``DEADLINE`` wire frames carry the remaining
  budget, client deadline minus elapsed), letting the coalescer drop
  requests that already expired before spending a kernel call on them.

The design contract, documented in ``docs/operations.md``: under
sustained overload the daemon keeps serving admitted requests at
bounded latency, sheds the excess with honest retry hints, never loses
an acknowledged write, and returns to full service when load drops.
"""

from __future__ import annotations

from repro.overload.admission import (
    DEFAULT_COSTS,
    DEFAULT_MAX_INFLIGHT,
    AdmissionController,
    TokenBucket,
)
from repro.overload.breaker import BreakerState, CircuitBreaker
from repro.overload.deadline import Deadline

__all__ = [
    "AdmissionController",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "TokenBucket",
    "DEFAULT_COSTS",
    "DEFAULT_MAX_INFLIGHT",
]
