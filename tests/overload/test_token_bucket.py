"""TokenBucket accounting: refill, all-or-nothing debit, hint math."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.overload.admission import TokenBucket


class TestConstruction:
    def test_burst_defaults_to_rate(self, clock):
        bucket = TokenBucket(50.0, clock=clock)
        assert bucket.burst == 50.0
        assert bucket.tokens == 50.0

    def test_starts_full(self, clock):
        bucket = TokenBucket(10.0, burst=4.0, clock=clock)
        assert bucket.tokens == 4.0

    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_rejects_nonpositive_rate(self, clock, rate):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate, clock=clock)

    @pytest.mark.parametrize("burst", [0.0, -2.0])
    def test_rejects_nonpositive_burst(self, clock, burst):
        with pytest.raises(ConfigurationError):
            TokenBucket(10.0, burst=burst, clock=clock)


class TestAcquire:
    def test_debits_exact_cost(self, clock):
        bucket = TokenBucket(10.0, burst=10.0, clock=clock)
        assert bucket.try_acquire(3.0)
        assert bucket.tokens == 7.0

    def test_all_or_nothing(self, clock):
        bucket = TokenBucket(10.0, burst=5.0, clock=clock)
        # A cost above the balance debits *nothing* — a failed acquire
        # must not penalise the very retry the hint schedules.
        assert not bucket.try_acquire(6.0)
        assert bucket.tokens == 5.0
        assert bucket.try_acquire(5.0)
        assert not bucket.try_acquire(0.5)

    def test_fractional_costs(self, clock):
        bucket = TokenBucket(10.0, burst=1.0, clock=clock)
        assert bucket.try_acquire(0.25)
        assert bucket.try_acquire(0.75)
        assert not bucket.try_acquire(0.25)


class TestRefill:
    def test_refills_at_rate(self, clock):
        bucket = TokenBucket(10.0, burst=10.0, clock=clock)
        assert bucket.try_acquire(10.0)
        clock.advance(0.5)
        assert bucket.tokens == pytest.approx(5.0)
        assert bucket.try_acquire(5.0)

    def test_refill_caps_at_burst(self, clock):
        bucket = TokenBucket(10.0, burst=3.0, clock=clock)
        assert bucket.try_acquire(3.0)
        clock.advance(1000.0)
        assert bucket.tokens == 3.0

    def test_no_time_travel(self, clock):
        bucket = TokenBucket(10.0, burst=10.0, clock=clock)
        assert bucket.try_acquire(4.0)
        assert bucket.tokens == pytest.approx(6.0)  # zero elapsed: no refill


class TestWaitTime:
    def test_zero_when_affordable(self, clock):
        bucket = TokenBucket(10.0, burst=10.0, clock=clock)
        assert bucket.wait_time(10.0) == 0.0

    def test_shortfall_over_rate(self, clock):
        bucket = TokenBucket(10.0, burst=10.0, clock=clock)
        assert bucket.try_acquire(10.0)
        assert bucket.wait_time(5.0) == pytest.approx(0.5)
        clock.advance(0.2)  # 2 tokens back
        assert bucket.wait_time(5.0) == pytest.approx(0.3)

    def test_cost_above_burst_waits_for_full_bucket(self, clock):
        # An impossible cost reports the wait for a *full* bucket — the
        # honest "try again with a smaller batch" hint, never infinity.
        bucket = TokenBucket(10.0, burst=8.0, clock=clock)
        assert bucket.try_acquire(8.0)
        assert bucket.wait_time(1000.0) == pytest.approx(0.8)
