"""Unit tests for the kernel primitives underneath the bulk paths.

The differential suite (`test_differential.py`) proves whole-filter
equivalence; these tests pin the individual building blocks — the
level-state bijection, single-pair updates vs ``HCBFWord``, the grouped
CBF counter kernels vs an ``np.add.at`` reference, and shared-memory
array packing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CounterOverflowError, CounterUnderflowError
from repro.filters.cbf import CountingBloomFilter
from repro.filters.hcbf_word import HCBFWord
from repro.kernels.columnar import ColumnarHCBF, counts_from_levels
from repro.kernels.grouped import grouped_decrements, grouped_increments
from repro.kernels.shmem import SharedArrayPack


class TestLevelStateBijection:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=0, max_size=24))
    def test_matches_hcbf_word(self, positions):
        # Drive a scalar word and a columnar word with identical
        # insertions; their canonical level state must be identical.
        word = HCBFWord(64, 40, index=0)
        col = ColumnarHCBF(1, 64, 40)
        for pos in positions:
            if word.bits_free < 1:
                break
            word.insert_bit(pos)
            col.insert_one(0, pos)
        sizes, levels = col.word_level_state(0)
        assert sizes == list(word.level_sizes())
        assert levels == [word.level_bits(i) for i in range(word.depth)]
        # And decoding the scalar word's state recovers the counters.
        decoded = counts_from_levels(word._sizes, word._levels, 40)
        assert np.array_equal(decoded, col.counts[0].astype(np.int64))

    def test_fresh_word_state(self):
        col = ColumnarHCBF(2, 64, 40)
        sizes, levels = col.word_level_state(0)
        assert sizes == [40]
        assert levels == [0]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=20))
    def test_set_round_trip(self, positions):
        src = ColumnarHCBF(1, 64, 40)
        for pos in positions:
            src.insert_one(0, pos)
        dst = ColumnarHCBF(1, 64, 40)
        sizes, levels = src.word_level_state(0)
        dst.set_word_level_state(0, sizes, levels)
        dst.rebuild_derived()
        assert np.array_equal(src.counts, dst.counts)
        assert np.array_equal(src.hist, dst.hist)
        assert np.array_equal(src.used, dst.used)
        assert np.array_equal(src.mirror, dst.mirror)
        dst.check_invariants()


class TestSinglePairOps:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 9)), max_size=30))
    def test_insert_delete_match_word(self, ops):
        word = HCBFWord(64, 40, index=0)
        col = ColumnarHCBF(1, 64, 40)
        for is_insert, pos in ops:
            if is_insert:
                if word.bits_free < 1:
                    continue
                _, bits = word.insert_bit(pos)
                assert col.insert_one(0, pos) == pytest.approx(bits)
            else:
                if word.count(pos) == 0:
                    continue
                _, bits = word.delete_bit(pos)
                assert col.delete_one(0, pos) == pytest.approx(bits)
            assert int(col.used[0]) == word.hierarchy_bits_used
            assert int(col.counts[0, pos]) == word.count(pos)
        col.check_invariants()
        word.check_invariants()


class TestGroupedCounterKernels:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 19), min_size=1, max_size=60),
        st.integers(1, 15),
    )
    def test_increments_match_scatter_reference(self, idx_list, limit):
        indices = np.asarray(idx_list, dtype=np.int64)
        ours = np.zeros(20, dtype=np.int32)
        ref = np.zeros(20, dtype=np.int32)
        events = grouped_increments(ours, indices, limit, raise_on_overflow=False)
        np.add.at(ref, indices, 1)
        ref_events = int(np.maximum(ref - limit, 0).sum())
        np.minimum(ref, limit, out=ref)
        assert np.array_equal(ours, ref)
        assert events == ref_events

    def test_increments_raise_rolls_back(self):
        counters = np.array([2, 0, 3], dtype=np.int32)
        before = counters.copy()
        with pytest.raises(CounterOverflowError) as info:
            grouped_increments(
                counters,
                np.array([2, 0, 2], dtype=np.int64),
                limit=3,
                raise_on_overflow=True,
            )
        assert info.value.index == 2  # lowest exceeded counter index
        assert np.array_equal(counters, before)

    def test_decrements_and_underflow_rollback(self):
        counters = np.array([2, 1, 0], dtype=np.int32)
        grouped_decrements(counters, np.array([0, 1], dtype=np.int64))
        assert counters.tolist() == [1, 0, 0]
        before = counters.copy()
        with pytest.raises(CounterUnderflowError) as info:
            grouped_decrements(counters, np.array([0, 2], dtype=np.int64))
        assert info.value.index == 2
        assert np.array_equal(counters, before)


class TestCBFKernelSwitch:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=40),
        st.integers(0, 3),
    )
    def test_columnar_matches_scalar_kernel(self, ids, seed):
        keys = np.asarray(ids, dtype=np.uint64)
        col = CountingBloomFilter(256, 3, counter_bits=8, seed=seed)
        sca = CountingBloomFilter(
            256, 3, counter_bits=8, seed=seed, kernel="scalar"
        )
        col.insert_many(keys)
        sca.insert_many(keys)
        assert np.array_equal(col.counters, sca.counters)
        probes = np.arange(64, dtype=np.uint64)
        assert np.array_equal(col.query_many(probes), sca.query_many(probes))
        assert np.array_equal(col.count_many(probes), sca.count_many(probes))
        half = keys[: len(keys) // 2]
        if len(half):
            col.delete_many(half)
            sca.delete_many(half)
            assert np.array_equal(col.counters, sca.counters)

    def test_bulk_underflow_is_atomic(self):
        filt = CountingBloomFilter(128, 3, counter_bits=8, seed=1)
        filt.insert_many(np.arange(5, dtype=np.uint64))
        before = filt.counters.copy()
        with pytest.raises(CounterUnderflowError):
            filt.delete_many(np.arange(4, 8, dtype=np.uint64))
        assert np.array_equal(filt.counters, before)

    def test_kernel_validation(self):
        with pytest.raises(Exception):
            CountingBloomFilter(64, 3, kernel="gpu")


class TestSharedArrayPack:
    def test_round_trip_and_shared_mutation(self):
        arrays = {
            "a": np.arange(12, dtype=np.int64).reshape(3, 4),
            "b": np.zeros(5, dtype=np.uint64),
            "c": np.array([True, False, True]),
        }
        pack = SharedArrayPack(arrays)
        try:
            attached = SharedArrayPack.attach(pack.name, pack.meta)
            try:
                views = attached.arrays()
                for name, arr in arrays.items():
                    assert np.array_equal(views[name], arr)
                    assert views[name].dtype == arr.dtype
                # Mutation through one attachment is visible in the other.
                views["b"][2] = 99
                mine = pack.arrays()
                assert int(mine["b"][2]) == 99
                del views, mine
            finally:
                attached.close()
        finally:
            pack.close()
            pack.unlink()

    def test_empty_pack(self):
        pack = SharedArrayPack({})
        try:
            assert pack.arrays() == {}
        finally:
            pack.close()
            pack.unlink()
