"""Tabulation hashing: provable independence for the hash substrate.

The multiply-shift mixers in :mod:`repro.hashing.mixers` are excellent
empirically but carry no independence guarantee; simple tabulation
hashing (Zobrist 1970; analysed by Pătrașcu & Thorup 2012) is
3-independent and known to make Bloom-filter and linear-probing bounds
hold *provably* — useful when an adversary can choose keys (see
:mod:`repro.workloads.adversarial`) or when a reviewer asks what the
reproduction's results owe to hash luck.

A 64-bit key is split into 8 bytes; each byte indexes a per-position
table of random 64-bit words, and the results XOR together::

    h(x) = T0[x0] ^ T1[x1] ^ ... ^ T7[x7]

The vectorised path evaluates all eight lookups as NumPy gathers, so
it stays bulk-friendly (≈2-3× the cost of one splitmix64 pass).
:class:`TabulationHashFamily` is a drop-in for
:class:`~repro.hashing.families.HashFamily` (same ``indices`` /
``indices_array`` surface), with each of the ``k`` functions drawing
its own independent tables.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.mixers import MASK64, derive_seeds

__all__ = ["TabulationHash", "TabulationHashFamily"]

_BYTES = 8
_TABLE_SIZE = 256


def _random_tables(seed: int) -> np.ndarray:
    """(8, 256) uint64 tables from a seeded generator."""
    rng = np.random.default_rng(seed)
    return rng.integers(
        0, 1 << 63, size=(_BYTES, _TABLE_SIZE), dtype=np.int64
    ).astype(np.uint64) ^ rng.integers(
        0, 1 << 63, size=(_BYTES, _TABLE_SIZE), dtype=np.int64
    ).astype(np.uint64)


class TabulationHash:
    """One simple-tabulation hash function over 64-bit keys."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._tables = _random_tables(seed)
        self._tables_list = [
            [int(v) for v in row] for row in self._tables
        ]  # scalar path avoids numpy overhead per byte

    def __call__(self, key: int) -> int:
        key &= MASK64
        h = 0
        for byte_index in range(_BYTES):
            h ^= self._tables_list[byte_index][(key >> (8 * byte_index)) & 0xFF]
        return h

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised evaluation over a ``uint64`` array."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.shape, dtype=np.uint64)
        for byte_index in range(_BYTES):
            bytes_ = (
                (keys >> np.uint64(8 * byte_index)) & np.uint64(0xFF)
            ).astype(np.int64)
            out ^= self._tables[byte_index][bytes_]
        return out


class TabulationHashFamily:
    """``k`` independent tabulation hash functions into ``[0, size)``.

    Drop-in alternative to
    :class:`~repro.hashing.families.HashFamily` for the flat filters;
    pass an instance as ``filter.family`` after construction (the
    filters only call ``indices`` / ``indices_array``).
    """

    def __init__(self, size: int, k: int, *, seed: int = 0) -> None:
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.size = size
        self.k = k
        self.seed = seed
        self._functions = [
            TabulationHash(s) for s in derive_seeds(seed, k)
        ]

    def __repr__(self) -> str:
        return f"TabulationHashFamily(size={self.size}, k={self.k}, seed={self.seed})"

    def indices(self, encoded_key: int) -> list[int]:
        """The ``k`` indices for one encoded key."""
        return [fn(encoded_key) % self.size for fn in self._functions]

    def indices_array(self, encoded_keys: np.ndarray) -> np.ndarray:
        """``(n, k)`` index matrix for a bulk key array."""
        keys = np.asarray(encoded_keys, dtype=np.uint64)
        columns = [
            (fn.hash_array(keys) % np.uint64(self.size)).astype(np.int64)
            for fn in self._functions
        ]
        return np.stack(columns, axis=1)
