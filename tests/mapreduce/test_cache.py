"""Tests for the DistributedCache broadcast channel."""

from __future__ import annotations

import pytest

from repro.filters.bloom import BloomFilter
from repro.mapreduce.cache import DistributedCache


class TestDistributedCache:
    def test_put_get(self):
        cache = DistributedCache()
        cache.put("x", {"a": 1}, size_bytes=10)
        assert cache.get("x") == {"a": 1}

    def test_duplicate_rejected(self):
        cache = DistributedCache()
        cache.put("x", 1, size_bytes=1)
        with pytest.raises(KeyError):
            cache.put("x", 2, size_bytes=1)

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            DistributedCache().get("nope")

    def test_filter_sized_from_total_bits(self):
        cache = DistributedCache()
        bf = BloomFilter(8192, 3)
        cache.put("filter", bf)
        assert cache.size_bytes("filter") == 1024

    def test_unknown_objects_default_to_zero(self):
        cache = DistributedCache()
        cache.put("obj", object())
        assert cache.size_bytes("obj") == 0

    def test_total_bytes(self):
        cache = DistributedCache()
        cache.put("a", 1, size_bytes=100)
        cache.put("b", 2, size_bytes=50)
        assert cache.total_bytes == 150

    def test_container_protocol(self):
        cache = DistributedCache()
        cache.put("a", 1, size_bytes=1)
        assert "a" in cache
        assert "b" not in cache
        assert list(cache) == ["a"]
        assert len(cache) == 1
