"""The rebalance coordinator: plans, drives, and resumes migrations.

A coordinator is an *operator-side* process (the ``repro cluster
join|drain`` commands construct one); the cluster nodes never talk to
each other about topology.  Its durable state lives in a state
directory:

``epochs/``
    The :class:`~repro.rebalance.epochs.EpochLog`.  Appending the
    target epoch is the plan's single commit point.
``plan.json``
    The in-flight plan: one entry per (source, destination) session
    with its moved ranges, vnode points, state machine position
    (PENDING → STREAMING → CATCHUP → FENCED → OWNED), scan watermark,
    and fence sequence.  Rewritten atomically after every step, so a
    killed coordinator resumes exactly where it stopped.

Crash-resume logic is deliberately dumb: if the target epoch is *not*
in the log, every unfinished session re-begins from its persisted scan
watermark (re-beginning un-fences, which is safe strictly before the
commit point — admitted writes are still ahead of the fence that will
be re-taken); if it *is* in the log, the plan already committed and
the coordinator only re-delivers the idempotent per-node commits.

Zero acked-write loss falls out of the ordering: a write is either
(a) before the fence — then it is at or below ``fence_seq`` and the
drain loop streams it before commit, or (b) after the fence — then the
source rejected it with a retryable :class:`WrongEpochError` and the
client re-sends it to the new owner after the epoch bump.  There is no
third case, because the fence flag and its sequence are taken on the
node's single mutation thread.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster.router import NodeAddress, ShardGroup
from repro.errors import ClusterError
from repro.observability.logging import get_logger
from repro.rebalance.epochs import (
    EpochLog,
    KeyRangeSet,
    RingEpoch,
    compute_moves,
)
from repro.service.client import FilterClient, _jittered_delay
from repro.service.protocol import (
    Opcode,
    RemoteError,
    decode_migrate_read_resp,
    encode_frame,
    encode_migrate_apply_body,
    encode_migrate_commit_body,
    encode_ring_epoch_set,
)

__all__ = ["Coordinator", "SESSION_STATES"]

logger = get_logger("rebalance.coordinator")

#: The per-session (and hence per-vnode) state machine, in order.
SESSION_STATES = ("PENDING", "STREAMING", "CATCHUP", "FENCED", "OWNED")


def _atomic_write_text(path: Path, text: str) -> None:
    from repro.service.snapshot import _write_bytes_atomic

    _write_bytes_atomic(text.encode("utf-8"), path)


class Coordinator:
    """Drives topology changes against a live cluster.

    Parameters
    ----------
    state_dir:
        Durable home of the epoch log and the in-flight plan.
    timeout_s:
        Per-call socket timeout towards the nodes.
    batch_records:
        WAL records scanned per MIGRATE_READ round-trip.
    catchup_lag:
        Remaining-records threshold at which the source is fenced; the
        fence window (writes answered with ``WrongEpochError``) lasts
        roughly this many records' worth of streaming.
    retries, backoff_s:
        Per-call retry budget for node restarts mid-migration, with
        full-jitter exponential backoff between attempts.
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        timeout_s: float = 10.0,
        batch_records: int = 512,
        catchup_lag: int = 64,
        retries: int = 10,
        backoff_s: float = 0.05,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.epoch_log = EpochLog(self.state_dir / "epochs")
        self.plan_path = self.state_dir / "plan.json"
        self.timeout_s = timeout_s
        self.batch_records = batch_records
        self.catchup_lag = catchup_lag
        self.retries = retries
        self.backoff_s = backoff_s
        self._clients: dict[str, FilterClient] = {}

    # -- node transport --------------------------------------------------
    def _client(self, node: NodeAddress) -> FilterClient:
        client = self._clients.get(node.address)
        if client is None:
            client = FilterClient(
                node.host, node.port, timeout_s=self.timeout_s
            )
            self._clients[node.address] = client
        return client

    def _drop(self, node: NodeAddress) -> None:
        client = self._clients.pop(node.address, None)
        if client is not None:
            client.close()

    def _call(
        self, node: NodeAddress, opcode: Opcode, body: bytes = b""
    ) -> tuple[Opcode, bytes]:
        """One request with reconnect-and-retry across node restarts."""
        last_error: Exception | None = None
        for attempt in range(max(1, self.retries)):
            try:
                return self._client(node).call(opcode, body)
            except (ConnectionError, OSError, TimeoutError) as exc:
                last_error = exc
                self._drop(node)
                time.sleep(_jittered_delay(self.backoff_s, attempt))
        raise ClusterError(
            f"node {node.address} unreachable for {opcode.name} after "
            f"{self.retries} attempts: {last_error}"
        )

    def _call_json(
        self, node: NodeAddress, opcode: Opcode, payload: dict
    ) -> dict:
        _, body = self._call(
            node, opcode, json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        return json.loads(body.decode("utf-8"))

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- epoch management ------------------------------------------------
    def bootstrap(
        self, groups: list[ShardGroup], *, vnodes: int = 64
    ) -> RingEpoch:
        """Record epoch v1 for a fresh cluster and push it to the nodes."""
        latest = self.epoch_log.latest()
        if latest is not None:
            raise ClusterError(
                f"cluster already bootstrapped (epoch v{latest.version}); "
                f"use join/drain to change topology"
            )
        epoch = RingEpoch(version=1, vnodes=vnodes, groups=tuple(groups))
        self.epoch_log.append(epoch)
        self.push_epoch(epoch)
        return epoch

    def push_epoch(self, epoch: RingEpoch) -> dict[str, bool]:
        """Install ``epoch`` on every node it names (best effort)."""
        blob = epoch.to_bytes()
        delivered: dict[str, bool] = {}
        for group in epoch.groups:
            body = encode_ring_epoch_set(group.name, blob)
            for node in group.nodes:
                try:
                    self._call(node, Opcode.RING_EPOCH, body)
                    delivered[node.address] = True
                except (ClusterError, RemoteError) as exc:
                    logger.info(
                        "epoch_push_failed",
                        extra={"node": node.address, "error": str(exc)},
                    )
                    delivered[node.address] = False
        return delivered

    # -- planning --------------------------------------------------------
    def _load_plan(self) -> dict | None:
        if not self.plan_path.exists():
            return None
        return json.loads(self.plan_path.read_text("utf-8"))

    def _save_plan(self, plan: dict) -> None:
        _atomic_write_text(
            self.plan_path, json.dumps(plan, indent=2, sort_keys=True)
        )

    def _make_plan(
        self, kind: str, epoch_from: RingEpoch, epoch_to: RingEpoch
    ) -> dict:
        existing = self._load_plan()
        to_hex = epoch_to.to_bytes().hex()
        if existing is not None and not existing.get("completed"):
            if existing["epoch_to_hex"] == to_hex:
                return existing  # same change requested again: resume it
            raise ClusterError(
                "another rebalance plan is in flight "
                f"(epoch v{existing['epoch_from']} → "
                f"v{existing['epoch_to']}); finish or resume it first"
            )
        moves = compute_moves(epoch_from, epoch_to)
        pairs: dict[tuple[str, str], list] = {}
        for move in moves:
            pairs.setdefault((move.src, move.dst), []).append(move)
        sessions = []
        for (src, dst), pair_moves in sorted(pairs.items()):
            sessions.append(
                {
                    "id": (
                        f"{kind}-v{epoch_from.version}-v{epoch_to.version}"
                        f"-{src}-{dst}"
                    ),
                    "src": src,
                    "dst": dst,
                    "ranges": [m.range.describe() for m in pair_moves],
                    "vnodes": sorted(m.vnode for m in pair_moves),
                    "state": "PENDING",
                    "scan": 0,
                    "fence_seq": None,
                    "committed_src": False,
                    "committed_dst": False,
                }
            )
        plan = {
            "kind": kind,
            "epoch_from": epoch_from.version,
            "epoch_to": epoch_to.version,
            "epoch_from_hex": epoch_from.to_bytes().hex(),
            "epoch_to_hex": to_hex,
            "completed": not sessions,
            "sessions": sessions,
        }
        self._save_plan(plan)
        return plan

    def plan_join(self, group: ShardGroup) -> dict:
        """Plan adding ``group`` to the ring (does not execute it)."""
        epoch_from = self._require_epoch()
        return self._make_plan("join", epoch_from, epoch_from.with_group(group))

    def plan_drain(self, name: str) -> dict:
        """Plan draining group ``name`` out of the ring."""
        epoch_from = self._require_epoch()
        return self._make_plan(
            "drain", epoch_from, epoch_from.without_group(name)
        )

    def _require_epoch(self) -> RingEpoch:
        latest = self.epoch_log.latest()
        if latest is None:
            raise ClusterError(
                "no ring epoch recorded yet; bootstrap the cluster first "
                "(repro cluster init)"
            )
        return latest

    # -- execution -------------------------------------------------------
    def execute(self, plan: dict | None = None) -> dict:
        """Run (or resume) the in-flight plan to completion."""
        if plan is None:
            plan = self._load_plan()
        if plan is None:
            raise ClusterError("no rebalance plan to execute")
        if plan.get("completed"):
            return plan
        epoch_from = RingEpoch.from_bytes(bytes.fromhex(plan["epoch_from_hex"]))
        epoch_to = RingEpoch.from_bytes(bytes.fromhex(plan["epoch_to_hex"]))
        committed = self.epoch_log.contains(epoch_to.version)
        if not committed:
            for session in plan["sessions"]:
                if session["state"] != "OWNED":
                    self._run_session(plan, session, epoch_from, epoch_to)
            # Every session is fenced and drained: commit the topology.
            self.epoch_log.append(epoch_to)
            logger.info(
                "plan_committed", extra={"epoch": epoch_to.version}
            )
        for session in plan["sessions"]:
            self._deliver_commits(plan, session, epoch_from, epoch_to)
        self.push_epoch(epoch_to)
        plan["completed"] = True
        self._save_plan(plan)
        return plan

    def _src_node(self, session: dict, epoch_from: RingEpoch) -> NodeAddress:
        return epoch_from.group(session["src"]).primary

    def _dst_node(self, session: dict, epoch_to: RingEpoch) -> NodeAddress:
        return epoch_to.group(session["dst"]).primary

    def _begin(
        self,
        plan: dict,
        session: dict,
        epoch_from: RingEpoch,
        epoch_to: RingEpoch,
    ) -> None:
        """(Re-)open both ends; safe any time before the commit point."""
        dst = self._dst_node(session, epoch_to)
        resp = self._call_json(
            dst,
            Opcode.MIGRATE_BEGIN,
            {
                "plan": session["id"],
                "role": "dst",
                "group": session["dst"],
                "epoch_hex": plan["epoch_from_hex"],
            },
        )
        # The destination's durable cursor may be ahead of our persisted
        # watermark (crash between its ack and our save): trust it.
        session["scan"] = max(int(session["scan"]), int(resp["cursor"]))
        src = self._src_node(session, epoch_from)
        self._call_json(
            src,
            Opcode.MIGRATE_BEGIN,
            {
                "plan": session["id"],
                "role": "src",
                "ranges": session["ranges"],
                "start_seq": session["scan"] + 1,
            },
        )
        session["state"] = "STREAMING"
        session["fence_seq"] = None
        self._save_plan(plan)

    def _run_session(
        self,
        plan: dict,
        session: dict,
        epoch_from: RingEpoch,
        epoch_to: RingEpoch,
    ) -> None:
        """Stream one session to the fenced-and-drained state."""
        self._begin(plan, session, epoch_from, epoch_to)
        src = self._src_node(session, epoch_from)
        dst = self._dst_node(session, epoch_to)
        while True:
            try:
                scanned, last_seq = self._pump_once(plan, session, src, dst)
            except RemoteError as exc:
                if "no migration session" in str(exc):
                    # The source (or destination) restarted mid-plan and
                    # lost its in-memory session: re-open both ends and
                    # carry on from the persisted watermark.
                    self._begin(plan, session, epoch_from, epoch_to)
                    continue
                raise
            lag = last_seq - scanned
            if session["fence_seq"] is not None:
                if session["scan"] >= session["fence_seq"]:
                    self._save_plan(plan)
                    return  # drained: nothing at or below the fence is left
                continue
            if lag <= self.catchup_lag:
                if session["state"] != "CATCHUP":
                    session["state"] = "CATCHUP"
                    self._save_plan(plan)
                resp = self._call_json(
                    src, Opcode.MIGRATE_FENCE, {"plan": session["id"]}
                )
                session["fence_seq"] = int(resp["fence_seq"])
                session["state"] = "FENCED"
                self._save_plan(plan)
            elif lag > 0 and scanned == session["scan"]:
                # Appended but not yet readable; yield briefly.
                time.sleep(0.002)

    def _pump_once(
        self, plan: dict, session: dict, src: NodeAddress, dst: NodeAddress
    ) -> tuple[int, int]:
        """One read→apply round-trip; persists the advanced watermark."""
        _, body = self._call(
            src,
            Opcode.MIGRATE_READ,
            json.dumps(
                {
                    "plan": session["id"],
                    "start_seq": session["scan"] + 1,
                    "max_records": self.batch_records,
                },
                sort_keys=True,
            ).encode("utf-8"),
        )
        scanned, last_seq, records = decode_migrate_read_resp(body)
        if records:
            self._call(
                dst,
                Opcode.MIGRATE_APPLY,
                encode_migrate_apply_body(session["id"], records),
            )
        if scanned > session["scan"]:
            # Persist only after the destination durably acked: a crash
            # here merely re-reads records the cursor deduplicates.
            session["scan"] = scanned
            self._save_plan(plan)
        return scanned, last_seq

    def _deliver_commits(
        self,
        plan: dict,
        session: dict,
        epoch_from: RingEpoch,
        epoch_to: RingEpoch,
    ) -> None:
        blob = bytes.fromhex(plan["epoch_to_hex"])
        if not session["committed_src"]:
            self._call(
                self._src_node(session, epoch_from),
                Opcode.MIGRATE_COMMIT,
                encode_migrate_commit_body(
                    {
                        "plan": session["id"],
                        "role": "src",
                        "group": session["src"],
                        "ranges": session["ranges"],
                        "excise_through": session["fence_seq"] or 0,
                    },
                    blob,
                ),
            )
            session["committed_src"] = True
            self._save_plan(plan)
        if not session["committed_dst"]:
            self._call(
                self._dst_node(session, epoch_to),
                Opcode.MIGRATE_COMMIT,
                encode_migrate_commit_body(
                    {
                        "plan": session["id"],
                        "role": "dst",
                        "group": session["dst"],
                    },
                    blob,
                ),
            )
            session["committed_dst"] = True
            self._save_plan(plan)
        session["state"] = "OWNED"
        self._save_plan(plan)

    # -- status ----------------------------------------------------------
    def status(self) -> dict:
        """Epoch, plan, and per-vnode state — what the CLI prints."""
        latest = self.epoch_log.latest()
        plan = self._load_plan()
        vnode_states: dict[str, str] = {}
        if plan is not None:
            for session in plan["sessions"]:
                for vnode in session["vnodes"]:
                    vnode_states[str(vnode)] = session["state"]
        return {
            "epoch": None if latest is None else latest.describe(),
            "epoch_versions": self.epoch_log.versions(),
            "plan": plan,
            "vnode_states": vnode_states,
            "idle": plan is None or bool(plan.get("completed")),
        }


# Re-exported for callers building custom tooling around the engine.
def ranges_of(session: dict) -> KeyRangeSet:
    """The :class:`KeyRangeSet` a persisted plan session covers."""
    return KeyRangeSet.from_json(session["ranges"])


def _unused_frame_helper() -> bytes:  # pragma: no cover - keeps imports honest
    return encode_frame(Opcode.PING)
