"""Grouped (bincount) counter updates for flat counting filters.

``np.add.at`` scatters one increment per hashed index and serialises on
repeated indices; for CBF-style batch updates it is the bulk-path
bottleneck.  Grouping the batch's indices with one ``np.bincount`` pass
and applying the per-counter deltas with a single vectorised add is
semantically identical (the overflow/underflow checks see the same
final counter values) and several times faster at batch sizes ≥ ~10k.

Both helpers mutate ``counters`` in place and roll the whole batch back
before raising, preserving the existing CBF bulk semantics: a failed
batch leaves the filter untouched, and the reported index is the lowest
offending counter index.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CounterOverflowError, CounterUnderflowError

__all__ = ["grouped_increments", "grouped_decrements"]


def grouped_increments(
    counters: np.ndarray,
    indices: np.ndarray,
    limit: int,
    *,
    raise_on_overflow: bool,
) -> int:
    """Add 1 per index (grouped); returns clipped saturation events.

    With ``raise_on_overflow`` the batch rolls back and
    :class:`CounterOverflowError` carries the lowest exceeded index;
    otherwise counters clip at ``limit`` and the summed excess is
    returned (the ``saturation_events`` delta).
    """
    delta = np.bincount(indices, minlength=len(counters))
    np.add(counters, delta, out=counters, casting="unsafe")
    exceeded = counters > limit
    if not exceeded.any():
        return 0
    if raise_on_overflow:
        idx = int(np.argmax(exceeded))
        np.subtract(counters, delta, out=counters, casting="unsafe")
        raise CounterOverflowError(idx, limit)
    events = int((counters[exceeded] - limit).sum())
    np.minimum(counters, limit, out=counters)
    return events


def grouped_decrements(counters: np.ndarray, indices: np.ndarray) -> None:
    """Subtract 1 per index (grouped); rolls back on underflow."""
    delta = np.bincount(indices, minlength=len(counters))
    np.subtract(counters, delta, out=counters, casting="unsafe")
    negative = counters < 0
    if negative.any():
        idx = int(np.argmax(negative))
        np.add(counters, delta, out=counters, casting="unsafe")
        raise CounterUnderflowError(idx)
