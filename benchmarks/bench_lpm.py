"""Application bench: Bloom-filter LPM off-chip probe rates (ref [4]).

The LPM application converts filter quality directly into router cost:
every false positive is a wasted off-chip probe, every per-length
filter check is an on-chip access.  This bench builds identical routing
tables over CBF, MPCBF-1 and plain-BF per-length filters, replays the
same lookup stream through a withdrawal burst, and reports off-chip
probes/lookup and on-chip accesses/lookup — the application-level form
of the paper's headline numbers.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.apps.lpm import BloomLPMTable
from repro.bench.reporting import ExperimentReport
from repro.filters.bloom import BloomFilter
from repro.filters.cbf import CountingBloomFilter
from repro.filters.mpcbf import MPCBF


def _factories(route_budget: int):
    words = max(64, route_budget * 16 // 64)
    return {
        "MPCBF-1": lambda length: MPCBF(
            words, 64, 3, capacity=route_budget, seed=length,
            word_overflow="saturate",
        ),
        "CBF": lambda length: CountingBloomFilter(
            words * 16, 3, seed=length
        ),
        "plain BF": lambda length: BloomFilter(words * 64, 3, seed=length),
    }


def _run(scale) -> ExperimentReport:
    report = ExperimentReport(
        "app-lpm",
        "LPM route lookup: off-chip probes and on-chip accesses per lookup",
        paper=(
            "Ref [4]'s architecture; counting filters absorb withdrawals, "
            "MPCBF does each per-length check in 1 on-chip access."
        ),
    )
    rng = np.random.default_rng(1)
    n_routes = min(5000, scale.synth_members)
    routes: dict = {}
    while len(routes) < n_routes:
        length = int(rng.choice([8, 16, 24], p=[0.1, 0.35, 0.55]))
        prefix = int(rng.integers(0, 1 << length))
        routes[(prefix, length)] = len(routes)
    lookups = [int(a) for a in rng.integers(0, 1 << 32, size=20_000)]
    keys = list(routes)
    for key in keys[:10_000]:
        prefix, length = key
        lookups.append(
            (prefix << (32 - length))
            | int(rng.integers(0, 1 << (32 - length)))
        )

    for name, factory in _factories(n_routes).items():
        table = BloomLPMTable(factory)
        for (prefix, length), hop in routes.items():
            table.announce(prefix, length, hop)
        # Withdrawal burst, then measure steady-state lookups.
        victims = keys[: len(keys) // 5]
        for prefix, length in victims:
            table.withdraw(prefix, length)
        table.offchip_probes = table.false_probes = 0
        for filt in table.filters.values():
            filt.reset_stats()
        matched = sum(table.lookup(addr).matched for addr in lookups)
        stats = table.onchip_stats()
        onchip = stats.query.word_accesses / len(lookups)
        report.add(
            structure=name,
            matched=matched,
            offchip_per_lookup=round(table.offchip_probes / len(lookups), 3),
            wasted_probes=table.false_probes,
            onchip_accesses_per_lookup=round(onchip, 2),
        )
    rows = {r["structure"]: r for r in report.rows}
    report.note(
        f"stale-bit penalty of plain BF: {rows['plain BF']['wasted_probes']} "
        f"wasted probes vs {rows['MPCBF-1']['wasted_probes']} for MPCBF-1"
    )
    return report


def test_lpm_application(benchmark, scale, capsys):
    report = run_once(benchmark, _run, scale)
    with capsys.disabled():
        print()
        print(report.render())
    rows = {r["structure"]: r for r in report.rows}
    # Identical matched counts: filters never change routing results.
    assert len({r["matched"] for r in report.rows}) == 1
    # Counting tables pay (far) fewer wasted probes than plain BF.
    assert rows["MPCBF-1"]["wasted_probes"] < rows["plain BF"]["wasted_probes"]
    # MPCBF's on-chip access count per lookup undercuts CBF's (k=3).
    assert (
        rows["MPCBF-1"]["onchip_accesses_per_lookup"]
        < rows["CBF"]["onchip_accesses_per_lookup"]
    )
