"""Crash recovery acceptance test: SIGKILL a real daemon, replay the WAL.

Runs ``repro cluster serve`` as a subprocess with ``--fsync always`` (so
every acknowledged mutation is durable before its OK frame), inserts a
workload, sends SIGKILL mid-stream — no drain, no final snapshot — and
asserts that snapshot + WAL replay reconstructs a state equivalent to a
dict oracle, byte-identical to a filter that applied the same acked
batches in the same order.
"""

from __future__ import annotations

import os
import signal
import subprocess
from pathlib import Path

import pytest

import json

from tests.conftest import spawn_cli_daemon

from repro.cluster.node import WalSnapshotManager, recover_node
from repro.cluster.wal import WriteAheadLog
from repro.filters.factory import FilterSpec, build_filter
from repro.serialize import dump_filter
from repro.service.client import FilterClient
from repro.service.protocol import Opcode
from repro.service.snapshot import snapshot_wal_seq, write_snapshot

SPEC_ARGS = ["--variant", "MPCBF-1", "--memory-kb", "64", "--k", "3", "--seed", "4"]


def make_filter():
    return build_filter(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=64 * 8192,
            k=3,
            capacity=64 * 8192 // 12,  # the CLI's default capacity rule
            seed=4,
            extra={"word_overflow": "saturate"},
        )
    )


def spawn_node(wal_dir: Path, snapshot: Path) -> tuple[subprocess.Popen, int]:
    try:
        return spawn_cli_daemon(
            [
                "cluster", "serve",
                *SPEC_ARGS,
                "--wal-dir", str(wal_dir),
                "--snapshot", str(snapshot),
                "--fsync", "always",
                "--port", "0",
            ]
        )
    except RuntimeError as exc:
        pytest.fail(str(exc))


class TestCrashRecovery:
    def test_sigkill_then_replay_matches_oracle(self, tmp_path):
        wal_dir = tmp_path / "wal"
        snapshot = tmp_path / "node.snap"
        proc, port = spawn_node(wal_dir, snapshot)
        acked_batches: list[list[bytes]] = []
        try:
            with FilterClient(port=port, timeout_s=10.0) as client:
                # Phase 1: durable prefix, then snapshot it (compacts).
                for batch in range(10):
                    keys = [b"pre-%d-%d" % (batch, i) for i in range(20)]
                    client.insert_many(keys)
                    acked_batches.append(keys)
                report = client.snapshot()
                assert report["wal_seq"] == 10
                # Phase 2: more acked mutations after the snapshot —
                # these exist only in the WAL when the kill lands.
                for batch in range(10, 25):
                    keys = [b"post-%d-%d" % (batch, i) for i in range(20)]
                    client.insert_many(keys)
                    acked_batches.append(keys)
                client.delete_many(acked_batches[0])
                acked_batches.append(["DELETE", acked_batches[0]])  # marker
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        assert proc.returncode == -signal.SIGKILL

        # Recover exactly as a restarted daemon would.
        recovery = recover_node(
            make_filter, wal_dir=wal_dir, snapshot_path=snapshot
        )
        assert recovery.snapshot_seq == 10
        assert recovery.replayed_records == 16  # 15 inserts + 1 delete
        assert recovery.wal.last_seq == 26

        # Oracle equivalence: a fresh filter fed the same acked batches
        # in the same order is byte-identical — replay is exact, not
        # just approximately right.
        oracle = make_filter()
        oracle_set: set[bytes] = set()
        for entry in acked_batches:
            if entry and entry[0] == "DELETE":
                oracle.delete_many(entry[1])
                oracle_set.difference_update(entry[1])
            else:
                oracle.insert_many(entry)
                oracle_set.update(entry)
        assert dump_filter(recovery.filter) == dump_filter(oracle)
        answers = recovery.filter.query_many(sorted(oracle_set))
        assert all(answers)  # no acknowledged insert went missing

    def test_snapshot_embeds_wal_seq_atomically(self, tmp_path):
        # The covered sequence travels inside the snapshot file itself
        # (one atomic rename), not in a sidecar a crash could split off.
        filt = make_filter()
        wal = WriteAheadLog(tmp_path / "wal")
        keys = [b"embed-%d" % i for i in range(5)]
        filt.insert_many(keys)
        for key in keys:
            wal.append(Opcode.INSERT, [key])
        manager = WalSnapshotManager(filt, tmp_path / "n.snap", wal)
        report = manager.save_now()
        wal.close()
        assert report["wal_seq"] == 5
        assert not (tmp_path / "n.snap.meta").exists()
        assert snapshot_wal_seq((tmp_path / "n.snap").read_bytes()) == 5
        recovery = recover_node(
            make_filter, wal_dir=tmp_path / "wal",
            snapshot_path=tmp_path / "n.snap",
        )
        assert recovery.snapshot_seq == 5
        assert recovery.replayed_records == 0
        assert all(recovery.filter.query_many(keys))

    def test_legacy_meta_sidecar_still_recovers(self, tmp_path):
        # Dumps from before the embedded trailer recorded the sequence
        # in a <path>.meta sidecar; recovery must still honour it.
        filt = make_filter()
        wal = WriteAheadLog(tmp_path / "wal")
        keys = [b"legacy-%d" % i for i in range(5)]
        for key in keys:
            wal.append(Opcode.INSERT, [key])
        filt.insert_many(keys[:3])
        write_snapshot(filt, tmp_path / "n.snap")  # plain MPCK, no seq
        (tmp_path / "n.snap.meta").write_text(
            json.dumps({"wal_seq": 3}), "utf-8"
        )
        wal.close()
        recovery = recover_node(
            make_filter, wal_dir=tmp_path / "wal",
            snapshot_path=tmp_path / "n.snap",
        )
        assert recovery.snapshot_seq == 3
        assert recovery.replayed_records == 2
        assert all(recovery.filter.query_many(keys))

    def test_snapshot_ahead_of_wal_supersedes_stale_records(self, tmp_path):
        # The crash window of a replication state transfer: the snapshot
        # (covering seq 10) hit disk but reset_to never ran, so the WAL
        # still holds stale pre-transfer records.  They are all covered
        # by the snapshot; recovery must drop them, not replay them.
        stale = WriteAheadLog(tmp_path / "wal")
        for i in range(4):
            stale.append(Opcode.INSERT, [b"stale-%d" % i])
        stale.close()
        donor = make_filter()
        donor.insert_many([b"xfer-%d" % i for i in range(50)])
        write_snapshot(donor, tmp_path / "n.snap", wal_seq=10)
        recovery = recover_node(
            make_filter, wal_dir=tmp_path / "wal",
            snapshot_path=tmp_path / "n.snap",
        )
        assert recovery.snapshot_seq == 10
        assert recovery.replayed_records == 0
        assert recovery.wal.last_seq == 10  # streaming resumes at 11
        assert dump_filter(recovery.filter) == dump_filter(donor)

    def test_restarted_daemon_serves_recovered_state(self, tmp_path):
        wal_dir = tmp_path / "wal"
        snapshot = tmp_path / "node.snap"
        proc, port = spawn_node(wal_dir, snapshot)
        keys = [b"restart-%d" % i for i in range(100)]
        try:
            with FilterClient(port=port, timeout_s=10.0) as client:
                client.insert_many(keys)
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)

        proc2, port2 = spawn_node(wal_dir, snapshot)
        try:
            with FilterClient(port=port2, timeout_s=10.0) as client:
                assert all(client.query_many(keys))
                stats = client.stats()
                assert stats["cluster"]["wal"]["last_seq"] == 1
        finally:
            proc2.send_signal(signal.SIGTERM)
            try:
                proc2.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc2.kill()
