"""Spectral Bloom Filter (Cohen & Matias, SIGMOD 2003) — related work [12].

A counting structure focused on *multiplicity estimation* rather than
just membership: the frequency of a key is estimated as the **minimum**
over its hashed counters (the MS estimator), optionally refined by the
**recurring minimum** heuristic (RM): keys whose minimum occurs in two
or more of their counters are answered from the primary filter (their
minimum is very likely exact); keys with a single minimal counter are
tracked in a small secondary filter that absorbs the collision error.

Included as the accuracy-focused counting baseline the paper cites in
§II.B; like the standard CBF it costs ``k`` memory accesses per
operation — the overhead axis MPCBF attacks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)
from repro.filters.base import CountingFilterBase
from repro.hashing.bit_budget import HashBitBudget
from repro.hashing.encoders import KeyEncoder
from repro.hashing.families import HashFamily
from repro.memmodel.accounting import OpKind

__all__ = ["SpectralBloomFilter"]


class SpectralBloomFilter(CountingFilterBase):
    """SBF with minimum-selection and recurring-minimum estimation.

    Parameters
    ----------
    num_counters:
        Primary counter vector size ``m``.
    k:
        Number of hash functions.
    counter_bits:
        Counter width (the original uses variable-length encoding; we
        model the counter *values* exactly and report memory as
        ``counter_bits`` per counter).
    recurring_minimum:
        Enable the RM secondary filter (size ``m // 4``).
    """

    def __init__(
        self,
        num_counters: int,
        k: int,
        *,
        counter_bits: int = 8,
        recurring_minimum: bool = True,
        seed: int = 0,
        encoder: KeyEncoder | None = None,
    ) -> None:
        super().__init__(encoder=encoder)
        if num_counters < 4:
            raise ConfigurationError(
                f"num_counters must be >= 4, got {num_counters}"
            )
        self.name = "SBF"
        self.num_counters = num_counters
        self.k = k
        self.counter_bits = counter_bits
        self.counter_limit = (1 << counter_bits) - 1
        self.recurring_minimum = recurring_minimum
        self.family = HashFamily(num_counters, k, seed=seed)
        self._counters = np.zeros(num_counters, dtype=np.int64)
        self._budget = HashBitBudget.flat(num_counters, k)
        if recurring_minimum:
            self._secondary_size = max(4, num_counters // 4)
            self._secondary_family = HashFamily(
                self._secondary_size, k, seed=seed ^ 0x53424632
            )
            self._secondary = np.zeros(self._secondary_size, dtype=np.int64)
        else:
            self._secondary_size = 0
            self._secondary_family = None
            self._secondary = None

    @property
    def total_bits(self) -> int:
        return (self.num_counters + self._secondary_size) * self.counter_bits

    @property
    def num_hashes(self) -> int:
        return self.k

    # -- internals --------------------------------------------------------
    def _values(self, encoded_key: int) -> tuple[list[int], np.ndarray]:
        indices = self.family.indices(encoded_key)
        return indices, self._counters[indices]

    def _has_recurring_minimum(self, values: np.ndarray) -> bool:
        minimum = values.min()
        return int((values == minimum).sum()) >= 2

    def _secondary_indices(self, encoded_key: int) -> list[int]:
        assert self._secondary_family is not None
        return self._secondary_family.indices(encoded_key)

    # -- operations --------------------------------------------------------
    def insert_encoded(self, encoded_key: int) -> None:
        indices, values = self._values(encoded_key)
        if (values >= self.counter_limit).any():
            idx = indices[int(np.argmax(values >= self.counter_limit))]
            raise CounterOverflowError(int(idx), self.counter_limit)
        # Minimal-increase optimisation (Cohen & Matias §3.1 discuss the
        # plain increase-all; SBF inserts increase all k counters so
        # deletions stay safe — we match that).
        self._counters[indices] = values + 1
        accesses = float(self.k)
        if self.recurring_minimum and not self._has_recurring_minimum(
            values + 1
        ):
            # Cohen & Matias' RM insert: divert single-minimum keys to
            # the secondary filter; on first diversion, seed it with
            # the key's current primary minimum so later queries see
            # the full count.
            sec = self._secondary_indices(encoded_key)
            if int(self._secondary[sec].min()) == 0:
                minimum = int((values + 1).min())
                self._secondary[sec] = np.maximum(self._secondary[sec], minimum)
            else:
                self._secondary[sec] += 1
            accesses += self.k
        self.stats.record(
            OpKind.INSERT,
            word_accesses=accesses,
            hash_bits=self._budget.total_bits,
            hash_calls=self._budget.hash_calls,
        )

    def delete_encoded(self, encoded_key: int) -> None:
        indices, values = self._values(encoded_key)
        if (values == 0).any():
            idx = indices[int(np.argmax(values == 0))]
            raise CounterUnderflowError(int(idx))
        had_single_min = self.recurring_minimum and not (
            self._has_recurring_minimum(values)
        )
        self._counters[indices] = values - 1
        accesses = float(self.k)
        if had_single_min:
            sec = self._secondary_indices(encoded_key)
            if (self._secondary[sec] > 0).all():
                self._secondary[sec] -= 1
            accesses += self.k
        self.stats.record(
            OpKind.DELETE,
            word_accesses=accesses,
            hash_bits=self._budget.total_bits,
            hash_calls=self._budget.hash_calls,
        )

    def query_encoded(self, encoded_key: int) -> bool:
        return self.count_encoded(encoded_key) > 0

    def count_encoded(self, encoded_key: int) -> int:
        """Frequency estimate: recurring minimum, else secondary filter."""
        indices, values = self._values(encoded_key)
        minimum = int(values.min())
        self.stats.record(
            OpKind.QUERY,
            word_accesses=float(self.k),
            hash_bits=self._budget.total_bits,
            hash_calls=self._budget.hash_calls,
        )
        if not self.recurring_minimum or self._has_recurring_minimum(values):
            return minimum
        sec = self._secondary_indices(encoded_key)
        sec_min = int(self._secondary[sec].min())
        # The secondary tracks only single-minimum keys; 0 there means
        # the key was never diverted, so the primary minimum stands.
        return sec_min if sec_min > 0 else minimum

    # -- bulk --------------------------------------------------------------
    def query_many(self, keys: object) -> np.ndarray:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return np.zeros(0, dtype=bool)
        indices = self.family.indices_array(encoded)
        positive = (self._counters[indices] > 0).all(axis=1)
        self.stats.record(
            OpKind.QUERY,
            count=len(encoded),
            word_accesses=float(self.k * len(encoded)),
            hash_bits=self._budget.total_bits * len(encoded),
            hash_calls=self._budget.hash_calls * len(encoded),
        )
        return positive
