"""Tests for experiment scale selection."""

from __future__ import annotations

import pytest

from repro.bench.scale import current_scale


class TestScaleSelection:
    def test_default_is_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "ci"

    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        scale = current_scale()
        assert scale.name == "paper"
        assert scale.synth_members == 100_000
        assert scale.trace_observations == 5_585_633
        assert scale.repeats == 10

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "PAPER")
        assert current_scale().name == "paper"

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            current_scale()

    def test_ci_preserves_ratios(self, monkeypatch):
        """The CI scale must keep every ratio of the paper scale so the
        reproduced shapes carry over."""
        monkeypatch.setenv("REPRO_SCALE", "ci")
        ci = current_scale()
        monkeypatch.setenv("REPRO_SCALE", "paper")
        paper = current_scale()
        # memory-per-member grid identical
        ci_grid = [m / ci.synth_members for m in ci.synth_memories]
        paper_grid = [m / paper.synth_members for m in paper.synth_memories]
        assert ci_grid == paper_grid
        # query/member ratio identical
        assert (
            ci.synth_queries / ci.synth_members
            == paper.synth_queries / paper.synth_members
        )
        # trace unique/total ratio within 1%
        assert ci.trace_observations / ci.trace_unique == pytest.approx(
            paper.trace_observations / paper.trace_unique, rel=0.01
        )
