"""Tests for the cluster cost model."""

from __future__ import annotations

import pytest

from repro.mapreduce.cost import ClusterCostModel


def costs(model: ClusterCostModel, **kw):
    defaults = dict(
        map_input_records=100_000,
        map_output_records=50_000,
        shuffle_bytes=50_000 * 24,
        reduce_input_records=50_000,
    )
    defaults.update(kw)
    return model.job_costs(**defaults)


class TestClusterCostModel:
    def test_phases_positive(self):
        c = costs(ClusterCostModel())
        assert c.map_seconds > 0
        assert c.shuffle_seconds > 0
        assert c.reduce_seconds > 0
        assert c.total_seconds == pytest.approx(
            c.map_seconds + c.shuffle_seconds + c.reduce_seconds + c.broadcast_seconds
        )

    def test_shuffle_scales_with_bytes(self):
        model = ClusterCostModel()
        a = costs(model, shuffle_bytes=10_000)
        b = costs(model, shuffle_bytes=100_000)
        assert b.shuffle_seconds == pytest.approx(10 * a.shuffle_seconds)

    def test_filtering_map_outputs_reduces_total(self):
        # The §V mechanism: fewer surviving map outputs → less shuffle
        # and reduce work → smaller total, despite the probe CPU.
        model = ClusterCostModel()
        unfiltered = costs(model)
        filtered = costs(
            model,
            map_output_records=20_000,
            shuffle_bytes=20_000 * 24,
            reduce_input_records=20_000,
            filter_probes=100_000,
            broadcast_bytes=50_000,
        )
        assert filtered.total_seconds < unfiltered.total_seconds

    def test_more_nodes_faster(self):
        three = costs(ClusterCostModel(nodes=3))
        six = costs(ClusterCostModel(nodes=6))
        assert six.total_seconds < three.total_seconds

    def test_broadcast_charged(self):
        model = ClusterCostModel()
        with_bc = costs(model, broadcast_bytes=10_000_000)
        without = costs(model)
        assert with_bc.broadcast_seconds > without.broadcast_seconds

    def test_frozen(self):
        model = ClusterCostModel()
        with pytest.raises(AttributeError):
            model.nodes = 5

    def test_relative_savings_insensitive_to_constants(self):
        # EXPERIMENTS.md leans on this: the % time cut from filtering is
        # stable when hardware constants shift by 2x.
        def cut(model):
            base = costs(model)
            filt = costs(
                model,
                map_output_records=20_000,
                shuffle_bytes=20_000 * 24,
                reduce_input_records=20_000,
                filter_probes=100_000,
            )
            return 1 - filt.total_seconds / base.total_seconds

    # Halve network speed / double CPU cost: direction must not flip.
        slow_net = ClusterCostModel(net_bytes_per_sec=58e6)
        slow_cpu = ClusterCostModel(map_cpu_per_record=3e-6)
        for model in (ClusterCostModel(), slow_net, slow_cpu):
            assert cut(model) > 0.1
