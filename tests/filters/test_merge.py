"""Tests for filter merging (distributed-build union)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, CounterOverflowError, WordOverflowError
from repro.filters.cbf import CountingBloomFilter
from repro.filters.mpcbf import MPCBF


class TestCBFMerge:
    def test_union_equals_sequential_build(self, small_keys):
        half = len(small_keys) // 2
        whole = CountingBloomFilter(4096, 3, seed=1)
        left = CountingBloomFilter(4096, 3, seed=1)
        right = CountingBloomFilter(4096, 3, seed=1)
        whole.insert_many(small_keys)
        left.insert_many(small_keys[:half])
        right.insert_many(small_keys[half:])
        left.merge(right)
        np.testing.assert_array_equal(left.counters, whole.counters)

    def test_multiplicities_add(self):
        a = CountingBloomFilter(1024, 3, seed=2)
        b = CountingBloomFilter(1024, 3, seed=2)
        for _ in range(2):
            a.insert("dup")
        for _ in range(3):
            b.insert("dup")
        a.merge(b)
        assert a.count("dup") == 5

    def test_deletes_work_after_merge(self, small_keys):
        a = CountingBloomFilter(4096, 3, seed=1)
        b = CountingBloomFilter(4096, 3, seed=1)
        a.insert_many(small_keys[:100])
        b.insert_many(small_keys[100:])
        a.merge(b)
        a.delete_many(small_keys)
        assert not a.query_many(small_keys).any()

    def test_geometry_mismatch_rejected(self):
        a = CountingBloomFilter(1024, 3, seed=1)
        for other in (
            CountingBloomFilter(2048, 3, seed=1),
            CountingBloomFilter(1024, 4, seed=1),
            CountingBloomFilter(1024, 3, seed=2),
            CountingBloomFilter(1024, 3, seed=1, counter_bits=8),
        ):
            with pytest.raises(ConfigurationError):
                a.merge(other)

    def test_merge_overflow_raises(self):
        a = CountingBloomFilter(64, 1, counter_bits=2, seed=0)
        b = CountingBloomFilter(64, 1, counter_bits=2, seed=0)
        for _ in range(3):
            a.insert("x")
            b.insert("x")
        with pytest.raises(CounterOverflowError):
            a.merge(b)

    def test_merge_overflow_saturates(self):
        a = CountingBloomFilter(
            64, 1, counter_bits=2, seed=0, overflow="saturate"
        )
        b = CountingBloomFilter(64, 1, counter_bits=2, seed=0)
        for _ in range(3):
            a.insert("x")
            b.insert("x")
        a.merge(b)
        assert a.count("x") == 3  # pinned at limit
        assert a.saturation_events == 3

    def test_packed_merge(self, small_keys):
        a = CountingBloomFilter(2048, 3, seed=1, storage="packed")
        b = CountingBloomFilter(2048, 3, seed=1)
        a.insert_many(small_keys[:100])
        b.insert_many(small_keys[100:])
        a.merge(b)
        assert a.query_many(small_keys).all()


class TestMPCBFMerge:
    def _pair(self, seed=3, n_max=20):
        return (
            MPCBF(64, 128, 3, n_max=n_max, seed=seed),
            MPCBF(64, 128, 3, n_max=n_max, seed=seed),
        )

    def test_union_equals_sequential_build(self, small_keys):
        half = len(small_keys) // 2
        a, b = self._pair()
        whole = MPCBF(64, 128, 3, n_max=20, seed=3)
        whole.insert_many(small_keys)
        a.insert_many(small_keys[:half])
        b.insert_many(small_keys[half:])
        a.merge(b)
        a.check_invariants()
        # Identical observable state: same counters at every position.
        for i in range(a.num_words):
            for pos in range(a.first_level_bits):
                assert a.words[i].count(pos) == whole.words[i].count(pos)

    def test_deletes_work_after_merge(self, small_keys):
        a, b = self._pair()
        a.insert_many(small_keys[:100])
        b.insert_many(small_keys[100:])
        a.merge(b)
        a.delete_many(small_keys)
        a.check_invariants()
        assert not a.query_many(small_keys).any()

    def test_geometry_mismatch_rejected(self):
        a = MPCBF(64, 128, 3, n_max=20, seed=3)
        for other in (
            MPCBF(32, 128, 3, n_max=20, seed=3),
            MPCBF(64, 128, 3, n_max=10, seed=3),
            MPCBF(64, 128, 3, n_max=20, seed=4),
        ):
            with pytest.raises(ConfigurationError):
                a.merge(other)

    def test_merge_overflow_raises(self):
        a = MPCBF(1, 64, 3, n_max=3, seed=0)
        b = MPCBF(1, 64, 3, n_max=3, seed=0)
        for i in range(3):
            a.insert(f"a{i}")
            b.insert(f"b{i}")
        with pytest.raises(WordOverflowError):
            a.merge(b)

    def test_merge_overflow_saturates_and_keeps_membership(self):
        a = MPCBF(1, 64, 3, n_max=3, seed=0, word_overflow="saturate")
        b = MPCBF(1, 64, 3, n_max=3, seed=0)
        keys = [f"a{i}" for i in range(3)] + [f"b{i}" for i in range(3)]
        for key in keys[:3]:
            a.insert(key)
        for key in keys[3:]:
            b.insert(key)
        a.merge(b)
        a.check_invariants()
        assert all(a.query(k) for k in keys)
        assert a.overflow_events > 0

    def test_saturated_other_side_folds_in(self):
        a = MPCBF(1, 64, 3, n_max=3, seed=0, word_overflow="saturate")
        b = MPCBF(1, 64, 3, n_max=3, seed=0, word_overflow="saturate")
        keys = [f"k{i}" for i in range(8)]
        for key in keys:
            b.insert(key)  # b saturates its single word
        assert b.overflow_events > 0
        a.merge(b)
        a.check_invariants()
        assert all(a.query(k) for k in keys)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 60), max_size=40),
    st.lists(st.integers(0, 60), max_size=40),
)
def test_merge_equals_sequential_property(left_keys, right_keys):
    """merge(A, B) is observably identical to inserting A∪B sequentially."""
    a = MPCBF(16, 256, 3, n_max=60, seed=5)
    b = MPCBF(16, 256, 3, n_max=60, seed=5)
    whole = MPCBF(16, 256, 3, n_max=60, seed=5)
    for k in left_keys:
        a.insert(f"k{k}")
        whole.insert(f"k{k}")
    for k in right_keys:
        b.insert(f"k{k}")
        whole.insert(f"k{k}")
    a.merge(b)
    a.check_invariants()
    for k in set(left_keys) | set(right_keys):
        assert a.count(f"k{k}") == whole.count(f"k{k}")
