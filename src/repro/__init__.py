"""repro — reproduction of "A Multi-Partitioning Approach to Building
Fast and Accurate Counting Bloom Filters" (Huang et al., IPDPS 2013).

The package implements the paper's contribution — the
Multiple-Partitioned Counting Bloom Filter (:class:`repro.MPCBF`) built
from hierarchical counting words (:class:`repro.HCBFWord`) — together
with every baseline it is evaluated against (standard BF/CBF, one-access
BF-g, partitioned PCBF-g, plus the related-work dlCBF and VI-CBF), the
closed-form analysis of §II–III, the synthetic/trace/patent workload
generators of §IV–V, and a miniature MapReduce engine reproducing the
reduce-side-join evaluation of §V.

Quickstart::

    from repro import MPCBF

    f = MPCBF(num_words=4096, word_bits=64, k=3, capacity=10_000)
    f.insert("alice")
    assert "alice" in f
    f.delete("alice")
    assert "alice" not in f
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    CapacityError,
    CounterOverflowError,
    CounterUnderflowError,
    WordOverflowError,
    UnsupportedOperationError,
)
from repro.filters import (
    BloomFilter,
    OneAccessBloomFilter,
    CountingBloomFilter,
    PartitionedCBF,
    HCBFWord,
    MPCBF,
    DLeftCBF,
    SpectralBloomFilter,
    VariableIncrementCBF,
    FilterSpec,
    build_filter,
    build_suite,
    OverflowPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "CounterOverflowError",
    "CounterUnderflowError",
    "WordOverflowError",
    "UnsupportedOperationError",
    "BloomFilter",
    "OneAccessBloomFilter",
    "CountingBloomFilter",
    "PartitionedCBF",
    "HCBFWord",
    "MPCBF",
    "DLeftCBF",
    "SpectralBloomFilter",
    "VariableIncrementCBF",
    "FilterSpec",
    "build_filter",
    "build_suite",
    "OverflowPolicy",
    "__version__",
]
