"""Numerical-accuracy tests for the analysis internals.

The closed forms truncate binomial supports and use log1p/expm1
rearrangements; these tests pin them against brute-force references at
sizes where the naive computation is exact.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import stats

from repro.analysis.fpr import (
    _binomial_mixture,
    _small_bf_fpr,
    bf_fpr,
    mpcbf_fpr,
    pcbf_fpr,
)


class TestBinomialMixture:
    def test_matches_full_summation_small(self):
        n, p = 200, 0.02

        def per_word(j):
            return 1.0 - np.exp(-0.3 * j)

        truncated = _binomial_mixture(n, p, per_word)
        full = sum(
            stats.binom.pmf(j, n, p) * per_word(np.array([float(j)]))[0]
            for j in range(n + 1)
        )
        assert truncated == pytest.approx(full, rel=1e-10)

    def test_constant_function_integrates_to_constant(self):
        assert _binomial_mixture(
            10_000, 1e-3, lambda j: np.ones_like(j)
        ) == pytest.approx(1.0, abs=1e-9)

    def test_identity_function_gives_mean(self):
        n, p = 5000, 0.002
        assert _binomial_mixture(n, p, lambda j: j) == pytest.approx(
            n * p, rel=1e-9
        )

    def test_large_support_stable(self):
        # Paper scale: the truncation must not lose mass.
        value = _binomial_mixture(
            200_000, 1 / 125_000, lambda j: np.ones_like(j)
        )
        assert value == pytest.approx(1.0, abs=1e-9)


class TestSmallBfFpr:
    def test_matches_naive_power_form(self):
        j = np.array([5.0])
        naive = (1.0 - (1.0 - 1.0 / 40.0) ** (5 * 3)) ** 3
        assert _small_bf_fpr(j, 40, 3)[0] == pytest.approx(naive, rel=1e-12)

    def test_fractional_hashes(self):
        j = np.array([4.0])
        naive = (1.0 - (1.0 - 1.0 / 38.0) ** (4 * 1.5)) ** 1.5
        assert _small_bf_fpr(j, 38, 1.5)[0] == pytest.approx(naive, rel=1e-12)

    def test_zero_slots_zero_fpr(self):
        assert _small_bf_fpr(np.array([0.0]), 40, 3)[0] == 0.0


class TestBfFprNumerics:
    def test_log1p_form_matches_naive_at_small_m(self):
        n, m, k = 50, 256, 3
        naive = (1.0 - (1.0 - 1.0 / m) ** (k * n)) ** k
        assert bf_fpr(n, m, k) == pytest.approx(naive, rel=1e-12)

    def test_huge_m_no_underflow(self):
        # 1/m below float epsilon of the naive (1-1/m)**kn form.
        value = bf_fpr(1000, 10**12, 3)
        expected = (1000 * 3 / 10**12) ** 3  # ~ (kn/m)^k for tiny load
        assert value == pytest.approx(expected, rel=1e-2)
        assert value > 0.0


class TestMixtureConsistency:
    def test_pcbf_reduces_to_per_word_bloom_with_one_word(self):
        # l = 1: every element lands in the single word; Eq. (2) should
        # collapse to the small-Bloom formula with j = n exactly.
        n, w, k = 40, 512, 3
        mixture = pcbf_fpr(n, w, w, k)
        direct = float(_small_bf_fpr(np.array([float(n)]), w // 4, k)[0])
        assert mixture == pytest.approx(direct, rel=1e-9)

    def test_mpcbf_monotone_in_n(self):
        fprs = [
            mpcbf_fpr(n, 600_000, 64, 3, n_max=8)
            for n in (2000, 5000, 10_000, 15_000)
        ]
        assert fprs == sorted(fprs)

    def test_mpcbf_monotone_in_memory(self):
        fprs = [
            mpcbf_fpr(10_000, M, 64, 3, n_max=8)
            for M in (400_000, 600_000, 800_000)
        ]
        assert fprs == sorted(fprs, reverse=True)

    def test_probabilities_never_escape_unit_interval(self):
        for n in (10, 1000, 100_000):
            for m_per_n in (8, 40, 200):
                value = pcbf_fpr(n, n * m_per_n, 64, 3)
                assert 0.0 <= value <= 1.0, (n, m_per_n)
