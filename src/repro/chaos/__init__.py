"""Deterministic fault-injection simulation harness (``repro.chaos``).

Runs the *unmodified* server, replication, and client code over
simulated transport, time, and storage so thousands of fault schedules
(crashes, partitions, torn WAL tails) can be explored deterministically
from a single seed — and any failure replayed bit-for-bit.

Components
----------
:class:`~repro.chaos.clock.SimClock` / :class:`~repro.chaos.clock.SimEventLoop`
    Virtual time: an asyncio event loop whose ``time()`` is a counter
    advanced instantly to the next scheduled callback, so a 60-second
    fault schedule executes in milliseconds.
:class:`~repro.chaos.network.SimNetwork`
    In-memory StreamReader/StreamWriter transport with injectable
    delay, drop, reorder, duplication, partitions, and resets, plugged
    into the production code through the
    :class:`~repro.service.transport.Transport` seam.
:class:`~repro.chaos.storage.FaultyStorage`
    File/fsync seam that tracks which bytes were actually fsynced and
    can tear unsynced WAL tails on crash, fail fsyncs, or inject
    ENOSPC mid-write.
:class:`~repro.chaos.schedule.Schedule`
    A seeded, canonical op/fault interleaving (JSON round-trippable,
    content-addressed by digest) plus ddmin shrinking.
:class:`~repro.chaos.runner.ChaosRunner`
    Drives a primary + replicas cluster through a schedule, folds the
    primary's WAL into a scalar oracle, and asserts zero acked-write
    loss and snapshot byte-identity.
"""

from repro.chaos.clock import SimClock, SimEventLoop
from repro.chaos.network import SimNetwork
from repro.chaos.schedule import Event, Schedule, shrink_schedule
from repro.chaos.storage import FaultyStorage
from repro.chaos.runner import ChaosRunner, run_seed

__all__ = [
    "SimClock",
    "SimEventLoop",
    "SimNetwork",
    "FaultyStorage",
    "Event",
    "Schedule",
    "shrink_schedule",
    "ChaosRunner",
    "run_seed",
]
