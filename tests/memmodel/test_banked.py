"""Tests for the bank-conflict pipeline simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.filters.cbf import CountingBloomFilter
from repro.filters.dlcbf import DLeftCBF
from repro.filters.mpcbf import MPCBF
from repro.memmodel.banked import (
    lookup_bank_requests,
    simulate_lookup_stream,
)
from repro.memmodel.pipeline import SramPipelineModel
from repro.workloads.adversarial import hot_key_stream


@pytest.fixture(scope="module")
def uniform_keys():
    return np.random.default_rng(1).integers(1, 2**62, size=50_000).astype(
        np.uint64
    )


class TestBankRequests:
    def test_mpcbf_one_request_per_lookup(self, uniform_keys):
        filt = MPCBF(4096, 64, 3, n_max=8, seed=1)
        banks, hashes = lookup_bank_requests(filt, uniform_keys, 8)
        assert len(banks) == len(uniform_keys)  # g=1 → one row each
        assert hashes == 3 * len(uniform_keys)  # k + g − 1

    def test_cbf_k_requests_per_lookup(self, uniform_keys):
        filt = CountingBloomFilter(1 << 16, 3, seed=1)
        banks, hashes = lookup_bank_requests(filt, uniform_keys, 8)
        assert len(banks) == 3 * len(uniform_keys)
        assert hashes == 3 * len(uniform_keys)

    def test_banks_in_range(self, uniform_keys):
        filt = MPCBF(4096, 64, 3, n_max=8, seed=1)
        banks, _ = lookup_bank_requests(filt, uniform_keys, 16)
        assert banks.min() >= 0 and banks.max() < 16

    def test_unsupported_filter(self, uniform_keys):
        with pytest.raises(ConfigurationError):
            lookup_bank_requests(DLeftCBF(64), uniform_keys, 8)


class TestSimulateUniform:
    def test_mpcbf_faster_than_cbf_when_banks_scarce(self, uniform_keys):
        # The paper's regime: memory ports are the scarce resource
        # (dual-port SRAM).  With plentiful banks both designs become
        # hash- or bandwidth-bound and the gap closes — which the
        # simulation shows honestly.
        mpcbf = MPCBF(4096, 64, 3, n_max=8, seed=1)
        cbf = CountingBloomFilter(1 << 16, 3, seed=1)
        r_mp = simulate_lookup_stream(mpcbf, uniform_keys, num_banks=2)
        r_cbf = simulate_lookup_stream(cbf, uniform_keys, num_banks=2)
        assert r_mp.ops_per_second > 2.5 * r_cbf.ops_per_second

    def test_agrees_with_analytic_model_on_uniform_traffic(self, uniform_keys):
        # On uniform streams the busiest bank is ~the average, so the
        # simulation must land near the closed-form projection.
        filt = MPCBF(4096, 64, 3, n_max=8, seed=1)
        sim = simulate_lookup_stream(
            filt, uniform_keys, num_banks=2, hash_units=8
        )
        model = SramPipelineModel(
            clock_hz=350e6, memory_ports=2, hash_units=8
        ).estimate(1.0, 3.0)
        assert sim.ops_per_second == pytest.approx(
            model.ops_per_second, rel=0.1
        )

    def test_utilisation_bounds(self, uniform_keys):
        filt = CountingBloomFilter(1 << 16, 3, seed=1)
        result = simulate_lookup_stream(filt, uniform_keys)
        assert 0.0 < result.bank_utilisation <= 1.0
        assert 0.0 < result.hottest_bank_share <= 1.0

    def test_more_banks_no_slower(self, uniform_keys):
        filt = CountingBloomFilter(1 << 16, 3, seed=1)
        few = simulate_lookup_stream(filt, uniform_keys, num_banks=2)
        many = simulate_lookup_stream(filt, uniform_keys, num_banks=16)
        assert many.cycles <= few.cycles

    def test_empty_stream(self):
        filt = MPCBF(64, 64, 3, n_max=8, seed=1)
        result = simulate_lookup_stream(filt, np.zeros(0, dtype=np.uint64))
        assert result.cycles == 1
        assert result.ops_per_second == 0.0

    def test_invalid_config(self, uniform_keys):
        filt = MPCBF(64, 64, 3, n_max=8, seed=1)
        with pytest.raises(ConfigurationError):
            simulate_lookup_stream(filt, uniform_keys, num_banks=0)


class TestHotFlowEffect:
    """The honest finding the closed-form model misses: a single hot
    flow serialises MPCBF on one bank while CBF's k probes spread."""

    def test_hot_flow_collapses_mpcbf_throughput(self):
        stream = hot_key_stream(1000, 40_000, 0.9, seed=2)
        mpcbf = MPCBF(4096, 64, 3, n_max=8, seed=1)
        uniform = hot_key_stream(1000, 40_000, 0.0, seed=2)
        hot = simulate_lookup_stream(mpcbf, stream)
        cold = simulate_lookup_stream(mpcbf, uniform)
        # 90% of lookups hit one word → one bank does ~90% of the work
        # and becomes the makespan; throughput drops well below the
        # uniform stream's (hash-bound) rate.
        assert hot.hottest_bank_share > 0.85
        assert hot.bottleneck == "memory"
        assert hot.ops_per_second < 0.6 * cold.ops_per_second

    def test_cbf_degrades_less_under_hot_flow(self):
        stream = hot_key_stream(1000, 40_000, 0.9, seed=2)
        mpcbf = MPCBF(4096, 64, 3, n_max=8, seed=1)
        cbf = CountingBloomFilter(1 << 16, 3, seed=1)
        r_mp = simulate_lookup_stream(mpcbf, stream)
        r_cbf = simulate_lookup_stream(cbf, stream)
        # CBF spreads the hot key over k banks; its hottest-bank share
        # must be materially below MPCBF's.
        assert r_cbf.hottest_bank_share < r_mp.hottest_bank_share
