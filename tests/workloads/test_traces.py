"""Tests for the CAIDA-shaped flow trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.traces import FlowTrace, make_trace_workload


@pytest.fixture(scope="module")
def trace() -> FlowTrace:
    return make_trace_workload(
        n_unique=5000, n_observations=100_000, n_inserted=3000, seed=1
    )


class TestTraceShape:
    def test_counts(self, trace):
        assert trace.n_unique == 5000
        assert trace.n_observations == 100_000
        assert trace.members_mask.sum() == 3000

    def test_flows_distinct(self, trace):
        packed = (trace.flows[:, 0].astype(np.uint64) << np.uint64(32)) | \
            trace.flows[:, 1].astype(np.uint64)
        assert len(np.unique(packed)) == 5000

    def test_every_flow_observed_at_least_once(self, trace):
        assert len(np.unique(trace.stream)) == 5000

    def test_heavy_tail(self, trace):
        counts = np.bincount(trace.stream, minlength=5000)
        # Power-law-ish: the top 1% of flows carry far more than 1% of
        # traffic, as in real backbone traces.
        top = np.sort(counts)[-50:].sum()
        assert top > 0.05 * trace.n_observations
        assert counts.min() >= 1

    def test_ground_truth_consistency(self, trace):
        truth = trace.query_is_member()
        assert len(truth) == trace.n_observations
        # Member fraction of the stream should exceed the unique member
        # fraction only by the weight of heavy member flows; sanity-check
        # it is in (0, 1).
        assert 0.0 < truth.mean() < 1.0

    def test_member_keys_subset_of_encoded(self, trace):
        members = trace.member_keys()
        assert len(members) == 3000
        assert np.isin(members, trace.encoded_flows()).all()

    def test_query_keys_alignment(self, trace):
        queries = trace.query_keys()
        encoded = trace.encoded_flows()
        np.testing.assert_array_equal(queries[:100], encoded[trace.stream[:100]])

    def test_deterministic(self):
        a = make_trace_workload(
            n_unique=100, n_observations=1000, n_inserted=50, seed=9
        )
        b = make_trace_workload(
            n_unique=100, n_observations=1000, n_inserted=50, seed=9
        )
        np.testing.assert_array_equal(a.stream, b.stream)
        np.testing.assert_array_equal(a.flows, b.flows)


class TestTraceValidation:
    def test_inserted_exceeds_unique(self):
        with pytest.raises(ConfigurationError):
            make_trace_workload(n_unique=10, n_observations=100, n_inserted=11)

    def test_observations_below_unique(self):
        with pytest.raises(ConfigurationError):
            make_trace_workload(n_unique=100, n_observations=50, n_inserted=10)

    def test_paper_defaults(self):
        # Default parameters mirror the paper's trace statistics.
        from repro.workloads.traces import (
            PAPER_INSERTED_FLOWS,
            PAPER_TOTAL_FLOWS,
            PAPER_UNIQUE_FLOWS,
        )

        assert PAPER_TOTAL_FLOWS == 5_585_633
        assert PAPER_UNIQUE_FLOWS == 292_363
        assert PAPER_INSERTED_FLOWS == 200_000
