"""Miniature MapReduce engine + reduce-side join (§V substitution).

The paper accelerates Hadoop reduce-side joins by broadcasting a
counting Bloom filter of the small relation's keys to every map task
(via DistributedCache) and dropping non-matching map outputs before the
shuffle.  This package rebuilds that pipeline in-process:

* :mod:`repro.mapreduce.engine` — input splits, map tasks, hash
  partitioning, sort-merge shuffle, reduce tasks, Hadoop-style named
  counters.
* :mod:`repro.mapreduce.cache` — the read-only broadcast side channel.
* :mod:`repro.mapreduce.cost` — an explicit I/O + network cost model,
  so "total execution time" can be reported both as wall-clock of the
  local engine and as modelled cluster seconds (DESIGN.md
  substitution #3).
* :mod:`repro.mapreduce.join` — tagged reduce-side join, with and
  without a Bloom-filter pre-filter, reproducing Table IV.
"""

from repro.mapreduce.engine import (
    MapContext,
    ReduceContext,
    JobCounters,
    JobResult,
    LocalMapReduceEngine,
    MapTaskFailedError,
)
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cost import ClusterCostModel
from repro.mapreduce.join import JoinReport, reduce_side_join

__all__ = [
    "MapContext",
    "ReduceContext",
    "JobCounters",
    "JobResult",
    "LocalMapReduceEngine",
    "MapTaskFailedError",
    "DistributedCache",
    "ClusterCostModel",
    "JoinReport",
    "reduce_side_join",
]
