#!/usr/bin/env python3
"""Quickstart: build an MPCBF, insert, query, count, delete.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import MPCBF, CountingBloomFilter
from repro.analysis import mpcbf_fpr, cbf_fpr


def main() -> None:
    # An MPCBF sized for ~10K elements in 64 KiB of "SRAM":
    # 8192 words x 64 bits.  `capacity` drives the paper's Eq. 11
    # n_max heuristic; everything else is automatic.
    filt = MPCBF(num_words=8192, word_bits=64, k=3, capacity=10_000, seed=42)
    print(f"built {filt!r}")
    print(
        f"  n_max={filt.n_max}, first level b1={filt.first_level_bits} bits, "
        f"hierarchy budget={64 - filt.first_level_bits} bits/word"
    )

    # Insert and query single keys (str, bytes, int, or (src, dst) flows).
    filt.insert("alice")
    filt.insert("bob")
    filt.insert(("alice"))  # duplicate insertions are counted
    print(f"  'alice' in filter: {'alice' in filt}")
    print(f"  count('alice') = {filt.count('alice')}")
    print(f"  'mallory' in filter: {'mallory' in filt}")

    # Deletions — the whole point of a *counting* Bloom filter.
    filt.delete("alice")
    print(f"  after one delete, count('alice') = {filt.count('alice')}")
    filt.delete("alice")
    print(f"  after two deletes, 'alice' in filter: {'alice' in filt}")

    # Bulk (vectorised) operations: one memory access per query.
    keys = [f"flow-{i}" for i in range(10_000)]
    filt.insert_many(keys)
    answers = filt.query_many(keys)
    print(f"  bulk-inserted {len(keys)} keys, all found: {bool(answers.all())}")
    stats = filt.stats.query
    print(f"  mean memory accesses per query: {stats.mean_accesses:.2f}")

    # Compare against a standard CBF at the same memory (Fig. 5's story).
    memory = filt.total_bits
    n = 10_000
    print("\nanalytic false positive rates at equal memory "
          f"({memory // 8192} KiB, n={n}, k=3):")
    print(f"  standard CBF : {cbf_fpr(n, memory, 3):.2e}")
    print(f"  MPCBF-1      : {mpcbf_fpr(n, memory, 64, 3, g=1):.2e}")
    print(f"  MPCBF-2      : {mpcbf_fpr(n, memory, 64, 3, g=2):.2e}")


if __name__ == "__main__":
    main()
