"""First-passage saturation analysis under sustained churn.

Eq. (11) bounds a *snapshot*: the probability that one word holds more
than ``n_max`` elements at a single instant.  A long-lived filter under
churn re-samples that event continuously — per-word occupancy is a
birth–death chain, and the quantity that matters for a deployment is
the probability that the occupancy *ever* crosses ``n_max`` within the
filter's lifetime.  This module computes it exactly.

Model (matching :func:`repro.workloads.churn.run_churn`): each epoch a
fraction ``c`` of the live population is deleted uniformly and replaced
by fresh uniform keys.  For one word with occupancy ``X_t``:

    X_{t+1} = Binomial(X_t, 1 − c)  +  A_t,
    A_t ~ Binomial(c·n, 1/l) ≈ Poisson(c·n/l)

The chain is truncated at the absorbing state ``> n_max`` (a word that
ever exceeds its budget saturates permanently), and the absorption
probability after ``t`` epochs comes from iterating the transition
matrix — exact to the truncation, no simulation noise.  The per-word
result lifts to "any of ``l`` words" by independence (occupancies are
negatively correlated, so the product form is slightly conservative,
i.e. an upper bound — the safe direction for planning).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError

__all__ = [
    "churn_transition_matrix",
    "saturation_probability_by_epoch",
    "expected_epochs_to_saturation",
]


def churn_transition_matrix(
    n: int, num_words: int, n_max: int, churn_fraction: float
) -> np.ndarray:
    """Single-word occupancy transition matrix with absorption.

    States ``0..n_max`` are live occupancies; state ``n_max+1`` absorbs
    every trajectory that ever needed more than the word's budget.
    Entry ``[i, j]`` is ``P[X_{t+1}=j | X_t=i]``.
    """
    if not 0.0 < churn_fraction <= 1.0:
        raise ConfigurationError(
            f"churn_fraction must be in (0, 1], got {churn_fraction}"
        )
    if n_max < 1 or num_words < 1 or n < 1:
        raise ConfigurationError("n, num_words, n_max must be >= 1")
    states = n_max + 2  # 0..n_max live, n_max+1 absorbing
    arrivals_rate = churn_fraction * n / num_words
    # Arrival pmf truncated where negligible; the tail mass goes to
    # "overflowing arrivals" and is routed to the absorbing state.
    a_hi = max(int(stats.poisson.ppf(1 - 1e-12, arrivals_rate)), n_max) + 1
    a_pmf = stats.poisson.pmf(np.arange(a_hi + 1), arrivals_rate)
    matrix = np.zeros((states, states))
    matrix[-1, -1] = 1.0  # absorbing
    for occupancy in range(n_max + 1):
        survive_pmf = stats.binom.pmf(
            np.arange(occupancy + 1), occupancy, 1.0 - churn_fraction
        )
        for survivors, p_survive in enumerate(survive_pmf):
            if p_survive < 1e-15:
                continue
            # survivors + arrivals -> next state (clip into absorption).
            next_states = survivors + np.arange(a_hi + 1)
            live = next_states <= n_max
            np.add.at(
                matrix[occupancy],
                next_states[live],
                p_survive * a_pmf[live],
            )
            matrix[occupancy, -1] += p_survive * a_pmf[~live].sum()
    return matrix


def saturation_probability_by_epoch(
    n: int,
    num_words: int,
    n_max: int,
    churn_fraction: float,
    epochs: int,
) -> np.ndarray:
    """P[some word has saturated by epoch t], for t = 1..epochs.

    The initial occupancy is the stationary build distribution
    ``Binomial(n, 1/l)`` (mass above ``n_max`` counts as saturated at
    t=0 — the Fig. 6 snapshot event).
    """
    matrix = churn_transition_matrix(n, num_words, n_max, churn_fraction)
    states = matrix.shape[0]
    dist = np.zeros(states)
    build = stats.binom.pmf(np.arange(n_max + 1), n, 1.0 / num_words)
    dist[: n_max + 1] = build
    dist[-1] = max(0.0, 1.0 - build.sum())
    out = np.empty(epochs)
    for t in range(epochs):
        dist = dist @ matrix
        per_word_saturated = dist[-1]
        out[t] = 1.0 - (1.0 - per_word_saturated) ** num_words
    return out


def expected_epochs_to_saturation(
    n: int,
    num_words: int,
    n_max: int,
    churn_fraction: float,
    *,
    horizon: int = 10_000,
) -> float:
    """Median epochs until the first word saturates (∞ if > horizon).

    Reported as the median of the any-word first-passage time — the
    planning number: "how long can this filter churn before its first
    word freezes?".
    """
    probs = saturation_probability_by_epoch(
        n, num_words, n_max, churn_fraction, horizon
    )
    crossed = np.nonzero(probs >= 0.5)[0]
    return float(crossed[0] + 1) if len(crossed) else float("inf")
