"""Request deadlines: a monotonic budget that travels with a request.

A deadline is created once, at the edge (the client call site or the
server's ``--deadline-default``), and every layer below it asks the
same two questions: :meth:`Deadline.remaining` when forwarding the
request (the wire carries *remaining* budget, i.e. client deadline
minus elapsed — never an absolute timestamp, so clocks on the two ends
need not agree), and :meth:`Deadline.expired` before spending real
work on it.  The highest-value check is the coalescer's: a request
that expired while queued is answered with
:class:`~repro.errors.DeadlineExceededError` *before* the kernel call,
so saturated queues shed dead work instead of computing answers nobody
is waiting for.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Deadline"]


class Deadline:
    """An absolute monotonic-clock expiry, built from a relative budget.

    Instances are cheap and immutable-ish (the clock is the only
    state); pass ``clock`` to pin time in tests.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self, expires_at: float, *, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(
        cls, budget_s: float, *, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """Deadline ``budget_s`` seconds from now (clamped to >= 0)."""
        return cls(clock() + max(0.0, budget_s), clock=clock)

    def remaining(self) -> float:
        """Seconds of budget left (0.0 once expired, never negative)."""
        return max(0.0, self.expires_at - self._clock())

    def remaining_us(self) -> int:
        """Remaining budget in integer microseconds (the wire unit)."""
        return int(self.remaining() * 1e6)

    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.6f}s)"
