"""Property tests for move minimality under single-node joins.

The consistent-hashing promise the rebalance subsystem leans on: when
one group joins an N-group ring, the only ownership changes are arcs
captured *by the newcomer*.  Survivors never trade arcs among
themselves, so a join migrates roughly ``1/(N+1)`` of the keyspace and
never more sessions than the newcomer has vnode points.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.router import NodeAddress, ShardGroup
from repro.rebalance.epochs import (
    KeyRangeSet,
    RingEpoch,
    compute_moves,
    hash_key,
)

VNODES = 64


def make_group(name: str, port: int) -> ShardGroup:
    return ShardGroup(
        name=name, primary=NodeAddress("127.0.0.1", port), replicas=()
    )


def make_epoch(n_groups: int, salt: int) -> RingEpoch:
    groups = tuple(
        make_group(f"grp{salt}-{i}", 7800 + i) for i in range(n_groups)
    )
    return RingEpoch(version=1, vnodes=VNODES, groups=groups)


@given(n=st.integers(min_value=1, max_value=8), salt=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_join_reassigns_at_most_the_newcomers_vnodes(n: int, salt: int):
    old = make_epoch(n, salt)
    newcomer = make_group(f"new{salt}", 7990)
    moves = compute_moves(old, old.with_group(newcomer))
    # One union arc per captured newcomer point, at most: vnodes/N of
    # each survivor's share heads to the newcomer and nothing else
    # moves, so the count is bounded by the newcomer's point count
    # (the paper-side analogue: adding a partition never reshuffles
    # the surviving partitions among themselves).
    assert len(moves) <= VNODES
    assert moves, "a newcomer always captures at least one arc"


@given(n=st.integers(min_value=1, max_value=8), salt=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_join_never_swaps_ownership_between_survivors(n: int, salt: int):
    old = make_epoch(n, salt)
    newcomer = make_group(f"new{salt}", 7990)
    new = old.with_group(newcomer)
    for move in compute_moves(old, new):
        assert move.dst == newcomer.name
        assert move.src != newcomer.name
        assert move.src in old.group_names()


@given(
    n=st.integers(min_value=1, max_value=6),
    salt=st.integers(0, 1000),
    keys=st.lists(st.binary(min_size=1, max_size=16), max_size=64),
)
@settings(max_examples=40, deadline=None)
def test_key_ownership_changes_exactly_on_the_moved_arcs(n, salt, keys):
    old = make_epoch(n, salt)
    newcomer = make_group(f"new{salt}", 7990)
    new = old.with_group(newcomer)
    moved = KeyRangeSet(m.range for m in compute_moves(old, new))
    old_ring, new_ring = old.ring(), new.ring()
    for key in keys:
        pos = hash_key(key)
        if moved.contains(pos):
            assert new_ring.owner_at(pos) == newcomer.name
        else:
            assert new_ring.owner_at(pos) == old_ring.owner_at(pos)


@given(n=st.integers(min_value=2, max_value=8), salt=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_join_moves_a_fair_share_of_the_keyspace(n: int, salt: int):
    """The moved span is ~1/(n+1) of the ring — bounded, not tiny."""
    old = make_epoch(n, salt)
    new = old.with_group(make_group(f"new{salt}", 7990))
    moved = KeyRangeSet(m.range for m in compute_moves(old, new))
    fraction = moved.span() / 2**64
    expected = 1.0 / (n + 1)
    # Wide tolerance: 64 vnodes gives a noisy but centred estimate.
    assert fraction < min(1.0, 4.0 * expected)
    assert fraction > expected / 6.0
