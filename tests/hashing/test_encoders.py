"""Tests for key encoding: scalar/vector agreement, type dispatch."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing.encoders import (
    KeyEncoder,
    encode_bytes,
    encode_flow,
    encode_flow_arrays,
    encode_int,
    encode_int_array,
    encode_key,
    encode_str_array,
)


class TestEncodeBytes:
    def test_known_fnv_vector(self):
        # FNV-1a 64-bit of empty input is the offset basis.
        assert encode_bytes(b"") == 0xCBF29CE484222325

    def test_fnv_a(self):
        # Well-known FNV-1a("a") test vector.
        assert encode_bytes(b"a") == 0xAF63DC4C8601EC8C

    def test_distinct(self):
        assert encode_bytes(b"hello") != encode_bytes(b"hellp")

    @given(st.binary(min_size=0, max_size=32))
    def test_range(self, data):
        assert 0 <= encode_bytes(data) < 2**64


class TestEncodeStrArray:
    def test_matches_scalar(self):
        keys = np.array([b"abcde", b"fghij", b"zzzzz"], dtype="S5")
        bulk = encode_str_array(keys)
        for key, enc in zip(keys, bulk):
            assert int(enc) == encode_bytes(bytes(key))

    def test_shorter_keys_in_wide_dtype(self):
        # NumPy pads with NULs; encoding must use the true length.
        keys = np.array([b"ab", b"abcd"], dtype="S6")
        bulk = encode_str_array(keys)
        assert int(bulk[0]) == encode_bytes(b"ab")
        assert int(bulk[1]) == encode_bytes(b"abcd")

    def test_empty_string(self):
        keys = np.array([b"", b"x"], dtype="S3")
        bulk = encode_str_array(keys)
        assert int(bulk[0]) == encode_bytes(b"")

    def test_embedded_nul(self):
        keys = np.array([b"a\x00b"], dtype="S3")
        assert int(encode_str_array(keys)[0]) == encode_bytes(b"a\x00b")

    def test_preserves_shape(self):
        keys = np.array([[b"aa", b"bb"], [b"cc", b"dd"]], dtype="S2")
        assert encode_str_array(keys).shape == (2, 2)

    def test_large_batch_unique(self):
        keys = np.array(
            [f"k{i:07d}".encode() for i in range(50_000)], dtype="S8"
        )
        encoded = encode_str_array(keys)
        assert len(np.unique(encoded)) == 50_000


class TestEncodeIntAndFlow:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_int_scalar_matches_array(self, v):
        arr = encode_int_array(np.array([v], dtype=np.uint64))
        assert int(arr[0]) == encode_int(v)

    def test_flow_scalar_matches_array(self):
        src = np.array([1, 2**32 - 1, 12345], dtype=np.uint64)
        dst = np.array([9, 0, 54321], dtype=np.uint64)
        bulk = encode_flow_arrays(src, dst)
        for s, d, e in zip(src, dst, bulk):
            assert int(e) == encode_flow(int(s), int(d))

    def test_flow_direction_matters(self):
        assert encode_flow(1, 2) != encode_flow(2, 1)

    def test_flow_rejects_oversized(self):
        with pytest.raises(ValueError):
            encode_flow(2**32, 0)

    def test_flow_arrays_shape_mismatch(self):
        with pytest.raises(ValueError):
            encode_flow_arrays(np.zeros(3, np.uint64), np.zeros(4, np.uint64))


class TestEncodeKeyDispatch:
    def test_str_matches_bytes(self):
        assert encode_key("abc") == encode_key(b"abc")

    def test_int(self):
        assert encode_key(7) == encode_int(7)

    def test_tuple_is_flow(self):
        assert encode_key((3, 4)) == encode_flow(3, 4)

    def test_numpy_integer(self):
        assert encode_key(np.int64(7)) == encode_int(7)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            encode_key(3.14)


class TestKeyEncoder:
    def test_uint64_passthrough(self):
        enc = KeyEncoder()
        arr = np.array([1, 2, 3], dtype=np.uint64)
        assert enc.encode_many(arr) is arr

    def test_int_array(self):
        enc = KeyEncoder()
        out = enc.encode_many(np.array([1, 2, 3], dtype=np.int32))
        assert out.dtype == np.uint64
        assert int(out[0]) == encode_int(1)

    def test_bytes_array(self):
        enc = KeyEncoder()
        keys = np.array([b"aaa", b"bbb"], dtype="S3")
        out = enc.encode_many(keys)
        assert int(out[1]) == encode_bytes(b"bbb")

    def test_iterable_fallback(self):
        enc = KeyEncoder()
        out = enc.encode_many(["x", "y"])
        assert int(out[0]) == encode_key("x")

    def test_float_array_rejected(self):
        enc = KeyEncoder()
        with pytest.raises(TypeError):
            enc.encode_many(np.zeros(3, dtype=np.float64))

    def test_scalar_bulk_agreement(self):
        enc = KeyEncoder()
        keys = [f"agree-{i}" for i in range(100)]
        bulk = enc.encode_many(keys)
        for key, e in zip(keys, bulk):
            assert enc.encode(key) == int(e)
