"""Tests for optimal-k selection (Fig. 9/10 machinery)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.fpr import bf_fpr, mpcbf_fpr
from repro.analysis.optimal import bf_optimal_fpr, cbf_optimal_k, mpcbf_optimal_k
from repro.errors import ConfigurationError


class TestCbfOptimalK:
    def test_matches_ln2_formula(self):
        M, n = 4_000_000, 100_000
        m = M // 4
        k_real = (m / n) * math.log(2)
        k = cbf_optimal_k(M, n)
        assert abs(k - k_real) <= 1

    def test_actually_optimal_among_neighbours(self):
        M, n = 6_000_000, 100_000
        m = M // 4
        k = cbf_optimal_k(M, n)
        assert bf_fpr(n, m, k) <= bf_fpr(n, m, max(1, k - 1))
        assert bf_fpr(n, m, k) <= bf_fpr(n, m, k + 1)

    def test_paper_range(self):
        # Fig. 9: 4 Mb → ~6-7 hashes, 8 Mb → ~12-14 at n = 100K.
        assert 5 <= cbf_optimal_k(4_000_000, 100_000) <= 8
        assert 11 <= cbf_optimal_k(8_000_000, 100_000) <= 15

    def test_grows_with_memory(self):
        ks = [cbf_optimal_k(M, 100_000) for M in range(4_000_000, 8_000_001, 1_000_000)]
        assert ks == sorted(ks)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            cbf_optimal_k(2, 0)

    def test_bf_optimal_fpr_consistent(self):
        M, n = 6_000_000, 100_000
        assert bf_optimal_fpr(M, n) == bf_fpr(n, M // 4, cbf_optimal_k(M, n))


class TestMpcbfOptimalK:
    def test_returns_feasible_minimum(self):
        M, n = 6_000_000, 100_000
        k_opt, fpr_opt = mpcbf_optimal_k(M, n, 64, g=1)
        assert fpr_opt == mpcbf_fpr(n, M, 64, k_opt, g=1)
        for k in range(1, 12):
            try:
                assert mpcbf_fpr(n, M, 64, k, g=1) >= fpr_opt
            except (ConfigurationError, ValueError):
                continue

    def test_nearly_constant_in_memory(self):
        # Fig. 9: MPCBF-1's optimal k stays ~3-4 across the sweep.
        ks = {
            mpcbf_optimal_k(M, 100_000, 64, g=1)[0]
            for M in range(4_000_000, 8_000_001, 1_000_000)
        }
        assert ks <= {3, 4, 5}

    def test_g_requires_k_at_least_g(self):
        k_opt, _ = mpcbf_optimal_k(6_000_000, 100_000, 64, g=3)
        assert k_opt >= 3

    def test_infeasible_raises(self):
        with pytest.raises(ConfigurationError):
            # Memory below one word leaves no feasible geometry at all.
            mpcbf_optimal_k(32, 100_000, 64, g=1, k_max=4)

    def test_g2_fpr_below_g1(self):
        M, n = 6_000_000, 100_000
        _, f1 = mpcbf_optimal_k(M, n, 64, g=1)
        _, f2 = mpcbf_optimal_k(M, n, 64, g=2)
        assert f2 < f1
