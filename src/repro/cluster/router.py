"""Consistent-hash cluster router.

Scales the serving daemon horizontally the same way the paper scales a
filter vertically: partition the key space, make every access touch one
partition.  The paper's MPCBF partitions *words inside one memory* so a
query costs one DRAM row; the router partitions *keys across shard
groups* so a query costs one node.  Same trick, one level up (see
``docs/paper_mapping.md``).

Topology: the unit of placement is a :class:`ShardGroup` — a primary
plus its replicas, replicating via :mod:`repro.cluster.replication`.
Groups own ranges of a :class:`HashRing`: each group hashes to
``vnodes`` pseudo-random points on a 64-bit circle (BLAKE2b of
``"name#i"``), and a key belongs to the group owning the first point at
or after the key's own hash.  Virtual nodes smooth the load (with one
point per group, a 2-group ring can split 90/10); adding a group moves
only ``~1/groups`` of the keys.

The router daemon reuses the serving stack wholesale: a
:class:`RouterBackend` implements the filter interface
(``insert_many`` / ``query_many`` / ``delete_many``), so a plain
:class:`~repro.service.server.FilterServer` hosts it and the
micro-batching coalescer works unchanged — concurrent client requests
coalesce into bulk batches *before* they fan out, amortising the
network round-trip per shard group exactly like the batcher amortises
interpreter overhead per filter call.

Failover: a :class:`HealthChecker` polls every node's ``/healthz``.
Reads route to the group's primary while it is healthy; on a primary
timeout or health-check failure they fall back to a replica (bounded
staleness: replication lag).  Writes have nowhere else to go — a dead
primary fails them with :class:`~repro.errors.ClusterError` until it
returns, preserving single-writer ordering per group.

Overload: an ``OVERLOADED`` answer from a primary sheds *reads* to the
group's replicas the same way a transport failure does (counted in
``overload_fallbacks``) — membership queries tolerate bounded
staleness, so replica capacity absorbs read storms.  Writes cannot
move, so each group's write path sits behind a
:class:`~repro.overload.CircuitBreaker`: a saturated or dead primary
trips it, and subsequent writes fail locally with a retry-after hint
instead of stoking the overload.  The breaker half-opens after its
cooldown and one probing write decides whether the group is back.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import struct
import threading
import urllib.request
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ClusterError, ConfigurationError
from repro.memmodel.accounting import AccessStats, OpKind
from repro.observability.logging import get_logger
from repro.overload import CircuitBreaker
from repro.service.client import FilterClient
from repro.service.protocol import ErrorCode, RemoteError

__all__ = [
    "NodeAddress",
    "ShardGroup",
    "HashRing",
    "HealthChecker",
    "RouterBackend",
    "parse_node",
    "parse_group",
]

logger = get_logger("cluster.router")


@dataclass(frozen=True)
class NodeAddress:
    """One daemon's wire address, plus its observability port if known."""

    host: str
    port: int
    health_port: int | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def health_url(self) -> str | None:
        if self.health_port is None:
            return None
        return f"http://{self.host}:{self.health_port}/healthz"


def parse_node(spec: str) -> NodeAddress:
    """Parse ``HOST:PORT`` or ``HOST:PORT/HEALTHPORT``."""
    body, _, health = spec.partition("/")
    host, sep, port = body.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"node spec {spec!r} is not HOST:PORT[/HEALTHPORT]"
        )
    try:
        return NodeAddress(
            host=host,
            port=int(port),
            health_port=int(health) if health else None,
        )
    except ValueError:
        raise ConfigurationError(f"node spec {spec!r} has a non-integer port")


@dataclass(frozen=True)
class ShardGroup:
    """A primary and its replicas — the ring's unit of placement."""

    name: str
    primary: NodeAddress
    replicas: tuple[NodeAddress, ...] = ()

    @property
    def nodes(self) -> tuple[NodeAddress, ...]:
        return (self.primary, *self.replicas)


def parse_group(spec: str) -> ShardGroup:
    """Parse ``NAME=PRIMARY[,REPLICA...]`` (each a node spec)."""
    name, sep, rest = spec.partition("=")
    if not sep or not name or not rest:
        raise ConfigurationError(
            f"group spec {spec!r} is not NAME=HOST:PORT[,HOST:PORT...]"
        )
    nodes = [parse_node(part) for part in rest.split(",")]
    return ShardGroup(name=name, primary=nodes[0], replicas=tuple(nodes[1:]))


def _hash64(data: bytes) -> int:
    return struct.unpack(
        "<Q", hashlib.blake2b(data, digest_size=8).digest()
    )[0]


class HashRing:
    """Consistent-hash ring with virtual nodes.

    ``lookup`` is O(log(groups * vnodes)) via bisect on the sorted
    point array.  The ring is immutable after construction; topology
    changes build a new ring (the router swaps it atomically).
    """

    def __init__(self, groups: list[ShardGroup], *, vnodes: int = 64) -> None:
        if not groups:
            raise ConfigurationError("a hash ring needs at least one group")
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        seen = set()
        for group in groups:
            if group.name in seen:
                raise ConfigurationError(
                    f"duplicate shard group name {group.name!r}"
                )
            seen.add(group.name)
        self.groups = {group.name: group for group in groups}
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for group in groups:
            for index in range(vnodes):
                points.append(
                    (_hash64(f"{group.name}#{index}".encode()), group.name)
                )
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def lookup(self, key) -> ShardGroup:
        """The group owning ``key``'s position on the ring.

        Byte keys hash directly; pre-encoded ``uint64`` keys (the
        columnar fastpath) hash as their 8-byte little-endian packing —
        the same position rule :func:`repro.rebalance.epochs.hash_key`
        uses, so routers and node gates always agree.
        """
        if not isinstance(key, (bytes, bytearray, memoryview)):
            key = struct.pack("<Q", int(key))
        return self.groups[self.owner_at(_hash64(bytes(key)))]

    def owner_at(self, position: int) -> str:
        """Name of the group owning ring ``position`` (a 64-bit hash).

        The owner is the group of the first ring point *strictly after*
        the position (``lookup`` uses ``bisect_right``), so each vnode
        point owns the arc ``[previous_point, point)`` ending at it.
        """
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0  # wrap: the first point owns the top arc
        return self._owners[index]

    def vnode_at(self, position: int) -> int:
        """The ring point (vnode position) owning ``position``."""
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0
        return self._points[index]

    def points(self) -> list[int]:
        """All vnode positions, sorted ascending."""
        return list(self._points)

    def partition(self, keys) -> dict[str, list[int]]:
        """Split ``keys`` into per-group lists of key *indices*."""
        parts: dict[str, list[int]] = {}
        for index, key in enumerate(keys):
            parts.setdefault(self.lookup(key).name, []).append(index)
        return parts

    def vnode_counts(self) -> dict[str, int]:
        counts: Counter[str] = Counter(self._owners)
        return {name: counts.get(name, 0) for name in self.groups}

    def load_fractions(self) -> dict[str, float]:
        """Fraction of the 64-bit hash space each group owns."""
        space = float(2**64)
        fractions = {name: 0.0 for name in self.groups}
        for index, point in enumerate(self._points):
            prev = self._points[index - 1] if index else self._points[-1]
            arc = (point - prev) % 2**64 if index else point + (2**64 - prev)
            fractions[self._owners[index]] += arc / space
        return fractions

    def describe(self) -> dict:
        return {
            "groups": sorted(self.groups),
            "vnodes": self.vnodes,
            "load_fractions": self.load_fractions(),
        }


class HealthChecker:
    """Background poller of every node's ``/healthz`` endpoint.

    Runs in a daemon thread (the router backend is already
    thread-based); nodes without a health port are assumed healthy and
    failures surface through connection errors instead.
    """

    def __init__(
        self,
        nodes: list[NodeAddress],
        *,
        interval_s: float = 1.0,
        timeout_s: float = 1.0,
        probe=None,
    ) -> None:
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        if probe is not None:
            # Injectable probe seam: ``probe(url) -> bool``.  The chaos
            # harness answers from simulated node state instead of HTTP.
            self._probe = probe
        self._urls = {
            node.address: node.health_url()
            for node in nodes
        }
        self._healthy = {address: True for address in self._urls}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def is_healthy(self, node: NodeAddress) -> bool:
        return self._healthy.get(node.address, True)

    def status(self) -> dict[str, bool]:
        return dict(self._healthy)

    def check_now(self) -> None:
        """One synchronous poll of every node (tests call this)."""
        for address, url in self._urls.items():
            if url is None:
                continue
            healthy = self._probe(url)
            if healthy != self._healthy[address]:
                logger.info(
                    "node_health_changed",
                    extra={"node": address, "healthy": healthy},
                )
            self._healthy[address] = healthy

    def _probe(self, url: str) -> bool:
        try:
            with urllib.request.urlopen(url, timeout=self.timeout_s) as resp:
                return 200 <= resp.status < 300
        except OSError:
            return False

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-health", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s + self.timeout_s + 1.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            self.check_now()
            self._stop.wait(self.interval_s)


def _default_client_factory(
    node: NodeAddress, *, timeout_s: float
) -> FilterClient:
    return FilterClient(
        node.host,
        node.port,
        timeout_s=timeout_s,
        retries=2,
        backoff_s=0.02,
    )


@dataclass
class _GroupClients:
    """Cached connections to one shard group's nodes."""

    group: ShardGroup
    clients: dict[str, FilterClient] = field(default_factory=dict)
    #: ``factory(node, timeout_s=...) -> FilterClient`` — the router's
    #: client-construction seam (simulations inject their transport).
    factory: object = _default_client_factory

    def client(self, node: NodeAddress, *, timeout_s: float) -> FilterClient:
        client = self.clients.get(node.address)
        if client is None:
            client = self.factory(node, timeout_s=timeout_s)
            self.clients[node.address] = client
        return client

    def drop(self, node: NodeAddress) -> None:
        client = self.clients.pop(node.address, None)
        if client is not None:
            client.close()

    def close(self) -> None:
        for client in self.clients.values():
            client.close()
        self.clients.clear()


class RouterBackend:
    """Filter-shaped fan-out over a hash ring of shard groups.

    Implements exactly the interface
    :class:`~repro.service.batching.FilterExecutor` drives
    (``insert_many`` / ``query_many`` / ``delete_many``), so a stock
    :class:`~repro.service.server.FilterServer` can host it: client
    requests coalesce in the server's micro-batcher, then each bulk
    call here partitions the batch by ring position and plays one
    request per shard group.  All calls run on the batcher's single
    worker thread, so the connection cache needs no locks.
    """

    supports_deletion = True
    #: The router holds no filter memory of its own.
    total_bits = 0

    def __init__(
        self,
        ring: HashRing,
        *,
        health: HealthChecker | None = None,
        timeout_s: float = 5.0,
        breaker_failures: int = 8,
        breaker_cooldown_s: float = 0.5,
        client_factory=None,
    ) -> None:
        self.ring = ring
        self.health = health
        self.timeout_s = timeout_s
        self.breaker_failures = breaker_failures
        self.breaker_cooldown_s = breaker_cooldown_s
        #: ``factory(node, timeout_s=...) -> FilterClient``; ``None``
        #: builds real TCP clients (the production path).
        self.client_factory = (
            client_factory
            if client_factory is not None
            else _default_client_factory
        )
        self.name = f"router[{len(ring.groups)} groups]"
        #: Ring lookups cost one hash evaluation per key; account them
        #: in the same AccessStats currency as a real filter.
        self.stats = AccessStats()
        #: ``(group, kind) -> keys`` routed counters for the exporter.
        self.routed_keys: Counter[tuple[str, str]] = Counter()
        self.fallback_reads = 0
        #: Reads served by a replica *because the primary shed them*
        #: (OVERLOADED), as opposed to ``fallback_reads`` which also
        #: counts plain transport failovers.
        self.overload_fallbacks = 0
        #: Installed :class:`~repro.rebalance.epochs.RingEpoch`, once a
        #: coordinator has pushed (or a MOVED redirect fetched) one.
        self._epoch = None
        self._groups = {
            name: _GroupClients(group=group, factory=self.client_factory)
            for name, group in ring.groups.items()
        }
        #: Per-group write-path breakers (reads fail over instead).
        self._breakers = {
            name: self._new_breaker() for name in ring.groups
        }

    def _new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self.breaker_failures,
            cooldown_s=self.breaker_cooldown_s,
        )

    # -- ring epochs -----------------------------------------------------
    def install_epoch(self, group: str, blob: bytes) -> dict:
        """Adopt a ring epoch (``group`` is unused — routers own no arc).

        Rebuilds the ring and connection cache, keeping live
        connections for shard groups that survive the change.  Runs on
        the hosting server's single worker thread like every other
        call, so no request can observe a half-swapped ring.
        """
        from repro.rebalance.epochs import RingEpoch

        epoch = RingEpoch.from_bytes(blob)
        if self._epoch is not None and epoch.version < self._epoch.version:
            return self.describe()  # stale delivery
        self._epoch = epoch
        self.ring = epoch.ring()
        previous = self._groups
        self._groups = {}
        for name, shard_group in self.ring.groups.items():
            cached = previous.pop(name, None)
            if cached is not None and cached.group == shard_group:
                self._groups[name] = cached
            else:
                if cached is not None:
                    cached.close()
                self._groups[name] = _GroupClients(
                    group=shard_group, factory=self.client_factory
                )
        for cached in previous.values():
            cached.close()  # drained groups
        # Surviving groups keep their breaker history; new groups start
        # closed, and breakers of drained groups are dropped with them.
        self._breakers = {
            name: self._breakers.get(name) or self._new_breaker()
            for name in self.ring.groups
        }
        self.name = f"router[{len(self.ring.groups)} groups]"
        logger.info(
            "router_epoch_installed", extra={"version": epoch.version}
        )
        return {
            "epoch_version": epoch.version,
            "groups": sorted(self.ring.groups),
        }

    def epoch_blob(self) -> bytes:
        if self._epoch is None:
            return b""
        return self._epoch.to_bytes()

    def refresh_epoch(self) -> bool:
        """Fetch the newest epoch any known node holds; adopt if newer.

        The MOVED recovery path: a redirect proves this router's ring
        is stale, and the node that rejected us (or any of its peers)
        already holds the epoch that explains where the key went.
        """
        from repro.rebalance.epochs import RingEpoch
        from repro.service.protocol import Opcode

        best: RingEpoch | None = None
        best_blob = b""
        for clients in list(self._groups.values()):
            for node in clients.group.nodes:
                try:
                    _, blob = clients.client(
                        node, timeout_s=self.timeout_s
                    ).call(Opcode.RING_EPOCH)
                except (ConnectionError, OSError, TimeoutError, RemoteError):
                    continue
                if not blob:
                    continue
                try:
                    epoch = RingEpoch.from_bytes(blob)
                except ConfigurationError:
                    continue
                if best is None or epoch.version > best.version:
                    best, best_blob = epoch, blob
        if best is None:
            return False
        if self._epoch is not None and best.version <= self._epoch.version:
            return False
        self.install_epoch("", best_blob)
        return True

    # -- filter interface ------------------------------------------------
    def insert_many(self, keys) -> None:
        self._mutate("insert", keys)

    def delete_many(self, keys) -> None:
        self._mutate("delete", keys)

    def query_many(self, keys) -> np.ndarray:
        columnar = isinstance(keys, np.ndarray)
        if not columnar:
            keys = list(keys)
        self._account(OpKind.QUERY, len(keys))
        answers = np.zeros(len(keys), dtype=bool)
        for group_name, indices in self.ring.partition(keys).items():
            self.routed_keys[(group_name, "query")] += len(indices)
            where = np.asarray(indices, dtype=np.intp)
            subset = keys[where] if columnar else [keys[i] for i in indices]
            try:
                result = self._query_group(self._groups[group_name], subset)
            except RemoteError as exc:
                # MOVED: our ring is stale.  Refresh it from the nodes
                # and re-route just this slice under the new epoch.
                if exc.code != ErrorCode.MOVED or not self.refresh_epoch():
                    raise
                result = self.query_many(subset)
            answers[where] = np.asarray(result, dtype=bool)
        return answers

    # -- routing ---------------------------------------------------------
    def _account(self, kind: OpKind, count: int) -> None:
        if count:
            self.stats.record(
                kind, count=count, word_accesses=0.0,
                hash_bits=64.0 * count, hash_calls=count,
            )

    def _mutate(self, kind: str, keys) -> None:
        columnar = isinstance(keys, np.ndarray)
        if not columnar:
            keys = list(keys)
        self._account(
            OpKind.INSERT if kind == "insert" else OpKind.DELETE, len(keys)
        )
        for group_name, indices in self.ring.partition(keys).items():
            self.routed_keys[(group_name, kind)] += len(indices)
            if columnar:
                subset = keys[np.asarray(indices, dtype=np.intp)]
            else:
                subset = [keys[i] for i in indices]
            clients = self._groups[group_name]
            primary = clients.group.primary
            if self.health is not None and not self.health.is_healthy(primary):
                raise ClusterError(
                    f"group {group_name!r}: primary {primary.address} is "
                    f"unhealthy; writes have no failover target"
                )
            breaker = self._breakers.get(group_name)
            if breaker is not None:
                # Raises OverloadedError locally while the group's write
                # path is open — no packet reaches the drowning primary.
                breaker.allow()
            try:
                client = clients.client(primary, timeout_s=self.timeout_s)
                if columnar:
                    # Forward pre-encoded keys over the bulk64 fastpath;
                    # a node without bulk64 support fails loudly rather
                    # than silently re-hashing the u64 column.
                    if kind == "insert":
                        client.insert_many64(subset)
                    else:
                        client.delete_many64(subset)
                elif kind == "insert":
                    client.insert_many(subset)
                else:
                    client.delete_many(subset)
            except RemoteError as exc:
                if breaker is not None:
                    if exc.code == ErrorCode.OVERLOADED:
                        breaker.record_failure()
                    else:
                        breaker.record_success()  # answering = serving
                # MOVED: re-route this slice under a refreshed ring.
                # (WRONG_EPOCH — a fence mid-migration — is forwarded:
                # the client owns that retry, with backoff.)
                if exc.code == ErrorCode.MOVED and self.refresh_epoch():
                    self._mutate(kind, subset)
                    continue
                raise  # the filter's own error (e.g. underflow): forward
            except (ConnectionError, OSError, TimeoutError) as exc:
                if breaker is not None:
                    breaker.record_failure()
                clients.drop(primary)
                raise ClusterError(
                    f"group {group_name!r}: primary {primary.address} "
                    f"unreachable for {kind}: {exc}"
                ) from exc
            else:
                if breaker is not None:
                    breaker.record_success()

    def _query_group(self, clients: _GroupClients, subset):
        group = clients.group
        columnar = isinstance(subset, np.ndarray)
        candidates = [
            node
            for node in group.nodes
            if self.health is None or self.health.is_healthy(node)
        ] or list(group.nodes)
        last_error: Exception | None = None
        shed_by_primary = False
        for position, node in enumerate(candidates):
            try:
                client = clients.client(node, timeout_s=self.timeout_s)
                result = (
                    client.query_many64(subset)
                    if columnar
                    else client.query_many(subset)
                )
                if position > 0 or node is not group.primary:
                    self.fallback_reads += len(subset)
                    if shed_by_primary:
                        self.overload_fallbacks += len(subset)
                return result
            except RemoteError as exc:
                if exc.code == ErrorCode.OVERLOADED and position + 1 < len(
                    candidates
                ):
                    # The primary shed this read; a replica can serve it
                    # (bounded staleness) — same move as a transport
                    # failover, but the node is alive, so keep its
                    # connection.
                    shed_by_primary = True
                    last_error = exc
                    continue
                raise
            except (ConnectionError, OSError, TimeoutError) as exc:
                clients.drop(node)
                last_error = exc
        raise ClusterError(
            f"group {group.name!r}: no node answered the query "
            f"({len(group.nodes)} tried): {last_error}"
        )

    # -- introspection ---------------------------------------------------
    def breaker_states(self) -> dict[str, int]:
        """Per-group breaker gauge values (0 closed / 1 half-open / 2 open)."""
        return {
            name: breaker.state_code
            for name, breaker in sorted(self._breakers.items())
        }

    def node_health(self) -> dict[str, bool]:
        if self.health is None:
            return {}
        return self.health.status()

    def node_status(self) -> dict[str, dict]:
        """REPL_STATUS-backed view of every node (best effort)."""
        out: dict[str, dict] = {}
        for clients in self._groups.values():
            for node in clients.group.nodes:
                try:
                    stats = clients.client(
                        node, timeout_s=self.timeout_s
                    ).stats()
                    out[node.address] = stats.get(
                        "cluster", {"role": "single"}
                    )
                except (ConnectionError, OSError, RemoteError) as exc:
                    clients.drop(node)
                    out[node.address] = {"error": str(exc)}
        return out

    def describe(self) -> dict:
        return {
            "ring": self.ring.describe(),
            "epoch_version": (
                None if self._epoch is None else self._epoch.version
            ),
            "groups": {
                name: {
                    "primary": clients.group.primary.address,
                    "replicas": [
                        node.address for node in clients.group.replicas
                    ],
                }
                for name, clients in self._groups.items()
            },
            "fallback_reads": self.fallback_reads,
            "overload_fallbacks": self.overload_fallbacks,
            "breakers": {
                name: breaker.describe()
                for name, breaker in sorted(self._breakers.items())
            },
            "node_health": self.node_health(),
            "routed_keys": {
                f"{group}/{kind}": count
                for (group, kind), count in sorted(self.routed_keys.items())
            },
        }

    def close(self) -> None:
        for clients in self._groups.values():
            clients.close()


def _json_default(value):
    return str(value)


def format_status(backend: RouterBackend) -> str:
    """Human-oriented JSON dump used by ``repro cluster status``."""
    payload = {"router": backend.describe(), "nodes": backend.node_status()}
    return json.dumps(payload, indent=2, sort_keys=True, default=_json_default)
