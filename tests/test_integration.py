"""Cross-module integration tests: the paper's pipelines end to end."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import build_suite
from repro.analysis import cbf_fpr, mpcbf_fpr
from repro.filters import CountingBloomFilter, MPCBF
from repro.mapreduce import LocalMapReduceEngine, reduce_side_join
from repro.workloads import (
    make_patent_dataset,
    make_synthetic_workload,
    make_trace_workload,
    run_membership_workload,
    run_suite,
)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_errors_hierarchy(self):
        assert issubclass(repro.CounterOverflowError, repro.CapacityError)
        assert issubclass(repro.WordOverflowError, repro.CapacityError)
        assert issubclass(repro.CapacityError, repro.ReproError)
        assert issubclass(repro.ConfigurationError, ValueError)


class TestSection4Pipeline:
    """The full §IV synthetic experiment, one small instance."""

    def test_fig7_style_run_agrees_with_analysis(self):
        n, memory, k = 4000, 240_000, 3
        workload = make_synthetic_workload(
            n_members=n, n_queries=60_000, seed=5
        )
        suite = build_suite(
            ["CBF", "PCBF-1", "MPCBF-1", "MPCBF-2"], memory, k,
            capacity=n, seed=5,
        )
        results = run_suite(suite, workload)
        # No variant ever returns a false negative (runner enforces it).
        for res in results.values():
            assert res.false_negatives == 0
        # Measured FPRs land near their closed forms.
        assert results["CBF"].false_positive_rate == pytest.approx(
            cbf_fpr(n, memory, k), rel=0.4
        )
        assert results["MPCBF-1"].false_positive_rate == pytest.approx(
            mpcbf_fpr(n, memory, 64, k), rel=0.5, abs=2e-4
        )
        # And the headline ordering holds.
        assert (
            results["MPCBF-2"].false_positive_rate
            <= results["CBF"].false_positive_rate
        )
        # Access accounting: MPCBF-1 must do exactly one access/query.
        assert results["MPCBF-1"].mean_query_accesses == pytest.approx(1.0)
        assert results["CBF"].mean_query_accesses > 1.5

    def test_churn_preserves_correctness_across_suite(self):
        workload = make_synthetic_workload(
            n_members=1500, n_queries=10_000, churn_fraction=0.5, seed=9
        )
        suite = build_suite(
            ["CBF", "PCBF-2", "MPCBF-1", "MPCBF-2"], 150_000, 3,
            capacity=1500, seed=9,
        )
        for res in run_suite(suite, workload).values():
            assert res.false_negatives == 0


class TestSection4DTracePipeline:
    def test_trace_membership(self):
        trace = make_trace_workload(
            n_unique=3000, n_observations=40_000, n_inserted=1000, seed=2
        )
        filt = MPCBF(4096, 64, 3, capacity=1000, seed=2, word_overflow="saturate")
        filt.insert_many(trace.member_keys())
        answers = filt.query_many(trace.query_keys())
        truth = trace.query_is_member()
        assert answers[truth].all()
        assert answers[~truth].mean() < 0.05
        filt.check_invariants()


class TestSection5Pipeline:
    def test_filtered_join_end_to_end(self):
        dataset = make_patent_dataset(
            n_keys=1000, n_citations=20_000, hit_fraction=0.35, seed=4
        )
        engine = LocalMapReduceEngine(num_map_tasks=3, num_reduce_tasks=2)
        plain = reduce_side_join(dataset, None, engine=engine)
        cbf = CountingBloomFilter(2500, 3, seed=4)
        filtered = reduce_side_join(dataset, cbf, engine=engine)
        assert filtered.joined_rows == plain.joined_rows
        assert filtered.map_output_records < plain.map_output_records
        assert filtered.modelled_seconds < plain.modelled_seconds

    def test_join_results_identical_across_filters(self):
        dataset = make_patent_dataset(
            n_keys=500, n_citations=8_000, hit_fraction=0.3, seed=6
        )
        engine = LocalMapReduceEngine()
        outputs = []
        for filt in (
            None,
            CountingBloomFilter(1250, 3, seed=6),
            MPCBF(78, 64, 3, n_max=7, seed=6, word_overflow="saturate"),
        ):
            rep = reduce_side_join(dataset, filt, engine=engine)
            outputs.append(sorted(rep.result.output))
        assert outputs[0] == outputs[1] == outputs[2]


class TestSharedEncoderConsistency:
    def test_same_keys_same_answers_across_key_types(self):
        # A str key and its utf-8 bytes must be the same element.
        filt = MPCBF(512, 64, 3, capacity=100, seed=1)
        filt.insert("key-1")
        assert filt.query(b"key-1")
        filt.delete(b"key-1")
        assert not filt.query("key-1")

    def test_bulk_encoded_and_raw_agree(self):
        filt = CountingBloomFilter(4096, 3, seed=1)
        keys = [f"x{i}" for i in range(100)]
        encoded = filt.encoder.encode_many(keys)
        filt.insert_many(keys)
        assert filt.query_many(encoded).all()


class TestStatsConsistency:
    def test_bulk_and_scalar_record_same_totals(self):
        a = CountingBloomFilter(4096, 3, seed=1)
        b = CountingBloomFilter(4096, 3, seed=1)
        keys = [f"k{i}" for i in range(50)]
        a.insert_many(keys)
        for key in keys:
            b.insert(key)
        assert a.stats.insert.operations == b.stats.insert.operations
        assert a.stats.insert.word_accesses == b.stats.insert.word_accesses
        assert a.stats.insert.hash_bits == pytest.approx(
            b.stats.insert.hash_bits
        )

    def test_mpcbf_query_stats_bulk_scalar_agree(self):
        a = MPCBF(512, 64, 3, capacity=200, seed=1)
        b = MPCBF(512, 64, 3, capacity=200, seed=1)
        keys = [f"k{i}" for i in range(200)]
        probes = np.asarray(
            a.encoder.encode_many([f"p{i}" for i in range(500)])
        )
        a.insert_many(keys)
        b.insert_many(keys)
        a.reset_stats()
        b.reset_stats()
        a.query_many(probes)
        for p in probes:
            b.query_encoded(int(p))
        assert a.stats.query.word_accesses == pytest.approx(
            b.stats.query.word_accesses
        )
