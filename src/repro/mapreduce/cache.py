"""DistributedCache: the broadcast side channel of the join pipeline.

In Hadoop, DistributedCache ships read-only files (here: the serialised
Bloom filter of the small relation) to every task tracker once per job
instead of per task.  The local engine models that as a named object
store whose per-object "shipping cost" is charged once per map *node*
by the cost model.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["DistributedCache"]


class DistributedCache:
    """Named read-only objects broadcast to all tasks.

    The cache tracks an approximate byte size per entry so the cost
    model can charge the one-time broadcast.  Objects exposing
    ``total_bits`` (all filters in :mod:`repro.filters`) are sized
    exactly; anything else falls back to a caller-supplied size.
    """

    def __init__(self) -> None:
        self._entries: dict[str, object] = {}
        self._sizes: dict[str, int] = {}

    def put(self, name: str, obj: object, *, size_bytes: int | None = None) -> None:
        """Register an object under ``name``.

        Raises ``KeyError`` on duplicate names — Hadoop cache filenames
        are unique per job, and silently replacing a filter mid-job
        would invalidate the cost accounting.
        """
        if name in self._entries:
            raise KeyError(f"cache entry {name!r} already exists")
        if size_bytes is None:
            total_bits = getattr(obj, "total_bits", None)
            size_bytes = (int(total_bits) + 7) // 8 if total_bits else 0
        self._entries[name] = obj
        self._sizes[name] = size_bytes

    def get(self, name: str) -> object:
        """Fetch a broadcast object (raises ``KeyError`` if absent)."""
        return self._entries[name]

    def size_bytes(self, name: str) -> int:
        """Registered size of one entry."""
        return self._sizes[name]

    @property
    def total_bytes(self) -> int:
        """Total broadcast payload per node."""
        return sum(self._sizes.values())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
