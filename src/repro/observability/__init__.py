"""Dependency-free observability: metrics export, logs, and spans.

The serving daemon measures itself through
:class:`~repro.service.metrics.ServiceMetrics` and the filters measure
themselves through :class:`~repro.memmodel.accounting.AccessStats`;
this package is the layer that gets those numbers *out* of the process:

* :mod:`~repro.observability.prometheus` — text-exposition rendering of
  every registry (plus a parser for tests and smoke checks);
* :mod:`~repro.observability.httpd` — the asyncio ``/metrics`` +
  ``/healthz`` endpoint (``repro serve --metrics-port``);
* :mod:`~repro.observability.logging` — structured JSON logs with
  per-request ids propagated through the micro-batcher;
* :mod:`~repro.observability.spans` — timer spans (context manager +
  decorator) feeding the same power-of-two histograms.

Everything is standard library only, by design: the daemon's
operational surface must not cost a dependency.  See
``docs/observability.md`` for metric families, label conventions, and
scrape configuration.
"""

from __future__ import annotations

from repro.observability.httpd import ObservabilityHTTPServer
from repro.observability.logging import (
    JsonLogFormatter,
    configure_json_logging,
    get_logger,
    new_request_id,
)
from repro.observability.prometheus import (
    escape_label_value,
    parse_exposition,
    render_metrics,
)
from repro.observability.spans import Span, span, spanned

__all__ = [
    "ObservabilityHTTPServer",
    "JsonLogFormatter",
    "configure_json_logging",
    "get_logger",
    "new_request_id",
    "escape_label_value",
    "parse_exposition",
    "render_metrics",
    "Span",
    "span",
    "spanned",
]
