"""Replication tests: codecs, streaming, quorum acks, catch-up paths."""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster.node import build_node_server, recover_node
from repro.cluster.replication import AckMode, ReplicationManager
from repro.cluster.wal import WriteAheadLog
from repro.errors import ConfigurationError
from repro.filters.factory import FilterSpec, build_filter
from repro.service.client import AsyncFilterClient
from repro.service.protocol import (
    ErrorCode,
    Opcode,
    ProtocolError,
    decode_ack_body,
    decode_error_body,
    decode_repl_snapshot_body,
    decode_replicate_body,
    encode_ack_body,
    encode_frame,
    encode_repl_snapshot_body,
    encode_replicate_body,
    read_frame,
)
from repro.service.snapshot import snapshot_bytes


def make_spec(seed=7):
    return FilterSpec(
        variant="MPCBF-1",
        memory_bits=64 * 8192,
        k=3,
        capacity=4000,
        seed=seed,
        extra={"word_overflow": "saturate"},
    )


def build(seed=7):
    return build_filter(make_spec(seed))


class TestCodecs:
    def test_replicate_roundtrip(self):
        body = encode_replicate_body(42, Opcode.INSERT, [b"alpha", b"", b"beta"])
        seq, op, keys = decode_replicate_body(body)
        assert (seq, op, keys) == (42, Opcode.INSERT, [b"alpha", b"", b"beta"])

    def test_ack_roundtrip_and_strictness(self):
        assert decode_ack_body(encode_ack_body(2**40)) == 2**40
        with pytest.raises(ProtocolError):
            decode_ack_body(b"\x00" * 7)

    def test_snapshot_roundtrip(self):
        body = encode_repl_snapshot_body(9, b"\x01\x02blob")
        assert decode_repl_snapshot_body(body) == (9, b"\x01\x02blob")

    def test_quorum_needs_a_replica(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        with pytest.raises(ConfigurationError):
            ReplicationManager(wal, [], ack_mode=AckMode.QUORUM)


def quorum_math(n_replicas):
    manager = ReplicationManager.__new__(ReplicationManager)
    manager.links = [object()] * n_replicas
    return manager.group_size, manager.quorum, manager.replica_acks_needed


class TestQuorumArithmetic:
    def test_majorities(self):
        assert quorum_math(1) == (2, 2, 1)  # every ack needs the replica
        assert quorum_math(2) == (3, 2, 1)  # one replica ack suffices
        assert quorum_math(3) == (4, 3, 2)
        assert quorum_math(4) == (5, 3, 2)


async def start_pair(tmp_path, *, ack_mode="quorum", **primary_kwargs):
    """A primary streaming to one read-only replica, both started."""
    replica_rec = recover_node(build, wal_dir=tmp_path / "wal-replica")
    replica = build_node_server(replica_rec, read_only=True)
    await replica.start()
    primary_rec = recover_node(
        build, wal_dir=tmp_path / "wal-primary",
        snapshot_path=tmp_path / "primary.snap",
    )
    primary = build_node_server(
        primary_rec,
        replicas=[("127.0.0.1", replica.port)],
        ack_mode=ack_mode,
        snapshot_path=tmp_path / "primary.snap",
        **primary_kwargs,
    )
    await primary.start()
    return primary, replica


class TestStreaming:
    def test_quorum_ack_means_replica_has_the_record(self, tmp_path):
        async def main():
            primary, replica = await start_pair(tmp_path)
            keys = [b"repl-%d" % i for i in range(300)]
            async with AsyncFilterClient(port=primary.port) as client:
                await client.insert_many(keys)
                await client.delete_many(keys[:50])
            # Quorum with one replica: the ack itself guarantees the
            # replica holds every record — no settling wait needed.
            assert replica.wal.last_seq == primary.wal.last_seq
            async with AsyncFilterClient(port=replica.port) as rclient:
                assert all(await rclient.query_many(keys[50:]))
            assert primary.replication.committed_seq == primary.wal.last_seq
            await primary.stop()
            await replica.stop()

        asyncio.run(main())

    def test_replica_rejects_client_writes(self, tmp_path):
        async def main():
            primary, replica = await start_pair(tmp_path)
            from repro.service.protocol import RemoteError

            async with AsyncFilterClient(port=replica.port) as rclient:
                with pytest.raises(RemoteError) as excinfo:
                    await rclient.insert(b"nope")
                assert excinfo.value.code.name == "UNSUPPORTED"
                assert isinstance(await rclient.query(b"whatever"), bool)
            await primary.stop()
            await replica.stop()

        asyncio.run(main())

    def test_late_replica_catches_up_from_wal(self, tmp_path):
        async def main():
            # Primary first, alone, in async mode: writes land without
            # any replica attached.
            primary_rec = recover_node(build, wal_dir=tmp_path / "wal-p")
            keys = [b"early-%d" % i for i in range(100)]
            primary_rec.filter.insert_many(keys)
            for key in keys:
                primary_rec.wal.append(Opcode.INSERT, [key])
            replica_rec = recover_node(build, wal_dir=tmp_path / "wal-r")
            replica = build_node_server(replica_rec, read_only=True)
            await replica.start()
            primary = build_node_server(
                primary_rec,
                replicas=[("127.0.0.1", replica.port)],
                ack_mode="quorum",
            )
            await primary.start()
            # Force a commit point to wait for the backlog to drain.
            async with AsyncFilterClient(port=primary.port) as client:
                await client.insert(b"late-marker")
            assert replica.wal.last_seq == primary.wal.last_seq
            async with AsyncFilterClient(port=replica.port) as rclient:
                assert all(await rclient.query_many(keys + [b"late-marker"]))
            await primary.stop()
            await replica.stop()

        asyncio.run(main())

    def test_compacted_wal_falls_back_to_snapshot_transfer(self, tmp_path):
        async def main():
            # Build primary history, snapshot it, compact the WAL so a
            # fresh replica cannot catch up from records alone.
            primary_rec = recover_node(
                build, wal_dir=tmp_path / "wal-p",
                snapshot_path=tmp_path / "p.snap",
            )
            keys = [b"compacted-%d" % i for i in range(200)]
            replica_rec = recover_node(build, wal_dir=tmp_path / "wal-r")
            replica = build_node_server(replica_rec, read_only=True)
            await replica.start()
            primary = build_node_server(
                primary_rec,
                replicas=[("127.0.0.1", replica.port)],
                ack_mode="quorum",
                snapshot_path=tmp_path / "p.snap",
            )
            # Small segments so compaction actually drops history.
            primary.wal.segment_bytes = 256
            await primary.start()
            async with AsyncFilterClient(port=primary.port) as client:
                for i in range(0, 200, 20):
                    await client.insert_many(keys[i : i + 20])
                await client.snapshot()  # compacts the WAL
            assert primary.wal.first_seq > 1
            # Kill and restart the replica from scratch: its offset (0)
            # now predates the WAL, forcing the snapshot path.
            await replica.stop()
            replica2_rec = recover_node(
                build, wal_dir=tmp_path / "wal-r2",
                snapshot_path=tmp_path / "r2.snap",
            )
            replica2 = build_node_server(
                replica2_rec, read_only=True,
                snapshot_path=tmp_path / "r2.snap",
            )
            await replica2.start()
            primary.replication.links[0].host = "127.0.0.1"
            primary.replication.links[0].port = replica2.port
            primary.replication.links[0].acked_seq = 0
            async with AsyncFilterClient(port=primary.port) as client:
                await client.insert(b"post-snapshot-key")
            assert primary.replication.links[0].snapshots_sent >= 1
            assert replica2.wal.last_seq == primary.wal.last_seq
            async with AsyncFilterClient(port=replica2.port) as rclient:
                assert all(
                    await rclient.query_many(keys + [b"post-snapshot-key"])
                )
            await primary.stop()
            await replica2.stop()

        asyncio.run(main())

    def test_stats_and_metrics_carry_cluster_families(self, tmp_path):
        async def main():
            primary, replica = await start_pair(tmp_path, metrics_port=0)
            async with AsyncFilterClient(port=primary.port) as client:
                await client.insert_many([b"m-%d" % i for i in range(50)])
                stats = await client.stats()
            cluster = stats["cluster"]
            assert cluster["role"] == "primary"
            assert cluster["wal"]["last_seq"] == 1
            assert cluster["replication"]["quorum"] == 2
            address = f"127.0.0.1:{replica.port}"
            assert cluster["replication"]["lag_records"][address] == 0

            from repro.observability.prometheus import parse_exposition

            families = parse_exposition(primary._render_metrics())
            assert ("repro_wal_last_seq" in families)
            lag = families["repro_replication_lag_records"]
            assert lag[0][0]["replica"] == address
            assert lag[0][1] == 0.0
            assert "repro_replication_committed_seq" in families
            await primary.stop()
            await replica.stop()

        asyncio.run(main())


async def send_frame(port, opcode, body=b""):
    """Fire one raw frame at a node and return its (opcode, body) reply."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_frame(opcode, body))
        await writer.drain()
        frame = await read_frame(reader)
        assert frame is not None
        return frame
    finally:
        writer.close()


class TestReplicationSafety:
    def test_replication_writes_refused_on_non_replicas(self, tmp_path):
        # REPLICATE/REPL_SNAPSHOT must not be accepted from arbitrary
        # clients on a primary: injected records would corrupt its
        # sequence space, and a snapshot install would wipe its WAL.
        async def main():
            primary, replica = await start_pair(tmp_path)
            async with AsyncFilterClient(port=primary.port) as client:
                await client.insert(b"legit")
            before = primary.wal.last_seq
            opcode, body = await send_frame(
                primary.port,
                Opcode.REPLICATE,
                encode_replicate_body(before + 1, Opcode.INSERT, [b"inject"]),
            )
            assert opcode == Opcode.ERROR
            assert decode_error_body(body)[0] == ErrorCode.UNSUPPORTED
            assert primary.wal.last_seq == before  # nothing was applied
            assert not primary.filter.query(b"inject")

            opcode, body = await send_frame(
                primary.port,
                Opcode.REPL_SNAPSHOT,
                encode_repl_snapshot_body(99, snapshot_bytes(build())),
            )
            assert opcode == Opcode.ERROR
            assert decode_error_body(body)[0] == ErrorCode.UNSUPPORTED
            assert primary.wal.last_seq == before  # WAL not reset

            # REPL_STATUS stays open on any WAL node (`cluster status`).
            opcode, _ = await send_frame(primary.port, Opcode.REPL_STATUS)
            assert opcode == Opcode.JSON
            await primary.stop()
            await replica.stop()

        asyncio.run(main())

    def test_snapshot_transfer_refused_without_snapshot_path(self, tmp_path):
        # Installing a state transfer only in memory and then resetting
        # the WAL would make the transferred state vanish on the next
        # restart — a replica that cannot persist it must refuse.
        async def main():
            rec = recover_node(build, wal_dir=tmp_path / "wal-r")
            replica = build_node_server(rec, read_only=True)
            await replica.start()
            opcode, body = await send_frame(
                replica.port,
                Opcode.REPL_SNAPSHOT,
                encode_repl_snapshot_body(5, snapshot_bytes(build())),
            )
            assert opcode == Opcode.ERROR
            code, message = decode_error_body(body)
            assert code == ErrorCode.PROTOCOL
            assert "snapshot path" in message
            assert replica.wal.last_seq == 0  # local WAL untouched
            await replica.stop()

        asyncio.run(main())

    def test_snapshot_install_is_durable_across_crash(self, tmp_path):
        # The transferred snapshot must be on disk before reset_to drops
        # the local WAL: an aborted replica (kill -9 stand-in) has to
        # come back with the installed state and the right sequence.
        async def main():
            rec = recover_node(
                build, wal_dir=tmp_path / "wal-r",
                snapshot_path=tmp_path / "r.snap",
            )
            replica = build_node_server(
                rec, read_only=True, snapshot_path=tmp_path / "r.snap"
            )
            await replica.start()
            donor = build()
            keys = [b"durable-%d" % i for i in range(200)]
            donor.insert_many(keys)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", replica.port
            )
            writer.write(
                encode_frame(
                    Opcode.REPL_SNAPSHOT,
                    encode_repl_snapshot_body(50, snapshot_bytes(donor)),
                )
            )
            await writer.drain()
            frame = await read_frame(reader)
            assert frame is not None
            opcode, body = frame
            assert opcode == Opcode.ACK and decode_ack_body(body) == 50
            writer.write(
                encode_frame(
                    Opcode.REPLICATE,
                    encode_replicate_body(51, Opcode.INSERT, [b"after-snap"]),
                )
            )
            await writer.drain()
            frame = await read_frame(reader)
            assert frame is not None and frame[0] == Opcode.ACK
            writer.close()
            await replica.abort()  # no drain, no final snapshot

            recovery = recover_node(
                build, wal_dir=tmp_path / "wal-r",
                snapshot_path=tmp_path / "r.snap",
            )
            assert recovery.snapshot_seq == 50
            assert recovery.wal.last_seq == 51
            assert all(recovery.filter.query_many(keys + [b"after-snap"]))
            recovery.wal.close()

        asyncio.run(main())


class TestAppendHookLifecycle:
    def test_stop_restores_previous_on_append(self, tmp_path):
        async def main():
            wal = WriteAheadLog(tmp_path / "wal")
            seen: list[int] = []
            hook = seen.append
            wal.on_append = hook
            manager = ReplicationManager(wal, [("127.0.0.1", 1)])
            manager.start()
            assert wal.on_append is not hook
            await manager.stop()
            assert wal.on_append is hook
            # A second start/stop cycle must not stack wrappers.
            manager2 = ReplicationManager(wal, [("127.0.0.1", 1)])
            manager2.start()
            await manager2.stop()
            assert wal.on_append is hook
            wal.append(Opcode.INSERT, [b"x"])
            assert seen == [1]  # chained exactly once, then restored
            wal.close()

        asyncio.run(main())

    def test_append_after_loop_close_does_not_raise(self, tmp_path):
        # If the hook is still installed when its loop dies (crashy
        # shutdown paths), a later append must not blow up the caller.
        wal = WriteAheadLog(tmp_path / "wal")
        manager = ReplicationManager(wal, [("127.0.0.1", 1)])

        async def main():
            manager.start()
            await asyncio.sleep(0)  # let the link task spin up

        asyncio.run(main())
        wal.append(Opcode.INSERT, [b"after-close"])
        assert wal.last_seq == 1
        wal.close()
