"""Ablation: independent hashing vs Kirsch–Mitzenmacher double hashing.

Related work [22] (cited in §II.B) shows two hash functions linearly
combined preserve the Bloom filter's asymptotic FPR while halving the
hashing work.  The flat filters here support both modes; this bench
verifies the FPR parity empirically and benchmarks the hashing
throughput difference — the practical justification for the paper's
concern with hash-computation counts in Fig. 8.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.filters.bloom import BloomFilter
from repro.hashing.families import HashFamily

_N = 20_000
_M = 1 << 18
_K = 5


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    members = rng.integers(1, 2**62, size=_N).astype(np.uint64)
    negatives = (
        rng.integers(1, 2**62, size=200_000).astype(np.uint64)
        | np.uint64(1 << 63)
    )
    return members, negatives


def test_fpr_parity(benchmark, data, capsys):
    members, negatives = data
    fprs = {}

    def run():
        for mode in ("independent", "double"):
            bf = BloomFilter(_M, _K, seed=1)
            bf.family = HashFamily(_M, _K, seed=1, mode=mode)
            bf.insert_many(members)
            fprs[mode] = float(bf.query_many(negatives).mean())
        return fprs

    benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nablation-hashing FPR: {fprs}")
    assert fprs["double"] == pytest.approx(fprs["independent"], rel=0.35)


@pytest.mark.parametrize("mode", ["independent", "double"])
def test_index_throughput(benchmark, mode, data):
    members, _ = data
    benchmark.group = "hash-family-throughput"
    fam = HashFamily(_M, _K, seed=1, mode=mode)
    out = benchmark(fam.indices_array, members)
    assert out.shape == (_N, _K)
