"""Cluster throughput: durability and replication priced in ops/s.

Four configurations of the same insert+query workload, all in-process
on ephemeral ports:

* ``single``        — the plain daemon (PR 1 baseline, no WAL)
* ``wal``           — WAL enabled, ``batch`` fsync (durability cost)
* ``replicated``    — primary + 1 replica, async acks (streaming cost)
* ``quorum``        — primary + 1 replica, quorum acks (the full price
                      of zero-acked-loss failover)

The claim under test mirrors the paper's amortisation story one level
up: because the WAL fsyncs once per coalesced micro-batch and
replication streams records in bulk, durability should cost a modest
constant factor — not a per-key collapse.

A second experiment prices *elastic scale-out*: client ops/s against a
one-group ring before, during, and after a second group joins via the
``repro.rebalance`` coordinator.  The during-phase number is the
client-visible cost of live resharding (redirect retries, fence
windows, WAL contention from the migration stream).

Writes ``results/cluster-throughput.json`` with both row sets.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.cluster.node import build_node_server, recover_node
from repro.filters.factory import FilterSpec, build_filter
from repro.service.client import AsyncFilterClient
from repro.service.server import FilterServer

RESULTS_PATH = Path(__file__).resolve().parents[1] / "results"
CLIENTS = 8


def _build(seed=6):
    return build_filter(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=256 * 8192,
            k=3,
            capacity=40_000,
            seed=seed,
            extra={"word_overflow": "saturate"},
        )
    )


async def _drive(port: int, clients: int, batches_per_client: int, batch: int):
    async def one_client(c: int) -> int:
        ops = 0
        async with AsyncFilterClient(port=port) as client:
            for i in range(batches_per_client):
                keys = [
                    b"clu-%d-%d-%d" % (c, i, j) for j in range(batch)
                ]
                await client.insert_many(keys)
                await client.query_many(keys)
                ops += 2 * batch
        return ops

    started = time.perf_counter()
    counts = await asyncio.gather(*[one_client(c) for c in range(clients)])
    return sum(counts), time.perf_counter() - started


def _measure(mode: str, tmp_base: Path, batches_per_client: int, batch: int) -> dict:
    async def main():
        servers = []
        if mode == "single":
            primary = FilterServer(_build())
            await primary.start()
            servers.append(primary)
        else:
            replicas = []
            if mode in ("replicated", "quorum"):
                rec = recover_node(_build, wal_dir=tmp_base / f"{mode}-r")
                replica = build_node_server(rec, read_only=True)
                await replica.start()
                servers.append(replica)
                replicas = [("127.0.0.1", replica.port)]
            rec = recover_node(_build, wal_dir=tmp_base / f"{mode}-p")
            primary = build_node_server(
                rec,
                replicas=replicas,
                ack_mode="quorum" if mode == "quorum" else "async",
            )
            await primary.start()
            servers.append(primary)
        total, elapsed = await _drive(
            primary.port, CLIENTS, batches_per_client, batch
        )
        wal_stats = (
            primary.wal.describe() if primary.wal is not None else None
        )
        for server in reversed(servers):
            await server.stop()
        return total, elapsed, wal_stats

    total, elapsed, wal_stats = asyncio.run(main())
    row = {
        "mode": mode,
        "ops": total,
        "elapsed_s": round(elapsed, 4),
        "ops_per_s": round(total / elapsed, 1),
    }
    if wal_stats is not None:
        row["wal_fsyncs"] = wal_stats["fsyncs_total"]
        row["wal_records"] = wal_stats["last_seq"]
    return row


def cluster_throughput(scale, tmp_base: Path) -> list[dict]:
    # Small batches keep per-request overhead honest; the volume knob
    # tracks the suite-wide scale setting.
    batches_per_client = max(5, scale.synth_queries // (CLIENTS * 400))
    return [
        _measure(mode, tmp_base, batches_per_client, batch=32)
        for mode in ("single", "wal", "replicated", "quorum")
    ]


def _pump_keys(client, tag: str, n_batches: int, batch: int) -> tuple[int, float]:
    """Insert ``n_batches`` unique batches; returns (ops, elapsed_s)."""
    started = time.perf_counter()
    ops = 0
    for i in range(n_batches):
        keys = [b"mig-%s-%d-%d" % (tag.encode(), i, j) for j in range(batch)]
        client.insert_many(keys)
        ops += batch
    return ops, time.perf_counter() - started


def migration_throughput(scale, tmp_base: Path) -> list[dict]:
    """Ops/s before, during, and after a live join migration."""
    from repro.cluster.cluster_client import ClusterClient
    from repro.cluster.router import NodeAddress, ShardGroup
    from repro.rebalance.coordinator import Coordinator

    vnodes = 32
    batch = 32
    n_batches = max(8, scale.synth_queries // (batch * 40))

    async def main():
        rec_a = recover_node(_build, wal_dir=tmp_base / "mig-a")
        node_a = build_node_server(rec_a, group="a")
        await node_a.start()
        group_a = ShardGroup(
            name="a", primary=NodeAddress("127.0.0.1", node_a.port), replicas=()
        )
        coord = Coordinator(
            tmp_base / "mig-coord", catchup_lag=64, batch_records=128
        )
        await asyncio.to_thread(coord.bootstrap, [group_a], vnodes=vnodes)

        rows = []
        with ClusterClient(
            [group_a], vnodes=vnodes, retries=12, backoff_s=0.02
        ) as client:
            ops, elapsed = await asyncio.to_thread(
                _pump_keys, client, "before", n_batches, batch
            )
            rows.append({"phase": "before", "ops": ops, "elapsed_s": elapsed})

            rec_b = recover_node(_build, wal_dir=tmp_base / "mig-b")
            node_b = build_node_server(rec_b, group="b")
            await node_b.start()
            group_b = ShardGroup(
                name="b",
                primary=NodeAddress("127.0.0.1", node_b.port),
                replicas=(),
            )
            await asyncio.to_thread(coord.plan_join, group_b)
            join = asyncio.create_task(asyncio.to_thread(coord.execute))
            ops = 0
            started = time.perf_counter()
            while not join.done():
                done, _ = await asyncio.to_thread(
                    _pump_keys, client, f"during-{ops}", 1, batch
                )
                ops += done
            rows.append(
                {
                    "phase": "during",
                    "ops": ops,
                    "elapsed_s": time.perf_counter() - started,
                }
            )
            await join

            client.refresh_topology()
            ops, elapsed = await asyncio.to_thread(
                _pump_keys, client, "after", n_batches, batch
            )
            rows.append({"phase": "after", "ops": ops, "elapsed_s": elapsed})

        coord.close()
        await node_b.stop()
        await node_a.stop()
        return rows

    rows = asyncio.run(main())
    for row in rows:
        row["elapsed_s"] = round(row["elapsed_s"], 4)
        row["ops_per_s"] = (
            round(row["ops"] / row["elapsed_s"], 1) if row["elapsed_s"] else 0.0
        )
    return rows


def test_cluster_throughput(benchmark, scale, capsys, tmp_path):
    rows = run_once(benchmark, cluster_throughput, scale, tmp_path)
    migration = migration_throughput(scale, tmp_path)
    RESULTS_PATH.mkdir(exist_ok=True)
    out = RESULTS_PATH / "cluster-throughput.json"
    out.write_text(
        json.dumps(
            {"scale": scale.name, "rows": rows, "migration": migration},
            indent=2,
        )
    )
    with capsys.disabled():
        print()
        print(f"{'mode':>12} {'ops/s':>12} {'fsyncs':>8} {'records':>8}")
        for row in rows:
            print(
                f"{row['mode']:>12} {row['ops_per_s']:>12.0f} "
                f"{row.get('wal_fsyncs', '-'):>8} "
                f"{row.get('wal_records', '-'):>8}"
            )
        print(f"{'migration':>12} {'ops/s':>12} {'ops':>8}")
        for row in migration:
            print(
                f"{row['phase']:>12} {row['ops_per_s']:>12.0f} "
                f"{row['ops']:>8}"
            )
    phases = {row["phase"]: row for row in migration}
    # The join must not stall traffic entirely, and the enlarged ring
    # must recover to a healthy fraction of the pre-join rate.
    assert phases["during"]["ops"] > 0, "writes must flow mid-migration"
    assert (
        phases["after"]["ops_per_s"] > phases["before"]["ops_per_s"] * 0.2
    ), "post-join throughput collapsed"
    by_mode = {row["mode"]: row for row in rows}
    # Batch-fsync amortisation: far fewer fsyncs than WAL records.
    assert by_mode["wal"]["wal_fsyncs"] < by_mode["wal"]["wal_records"] * 0.75
    # Durability is a constant factor, not a collapse: the WAL'd daemon
    # holds a sizeable fraction of baseline throughput.
    assert (
        by_mode["wal"]["ops_per_s"] > by_mode["single"]["ops_per_s"] * 0.25
    ), "WAL should cost a constant factor, not an order of magnitude"
