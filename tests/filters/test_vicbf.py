"""Tests for the Variable-Increment CBF extension baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)
from repro.filters.vicbf import VariableIncrementCBF


def make(num_counters=2048, k=3, seed=1, **kw) -> VariableIncrementCBF:
    return VariableIncrementCBF(num_counters, k, seed=seed, **kw)


class TestVICBF:
    def test_cycle(self, small_keys):
        f = make()
        f.insert_many(small_keys)
        assert f.query_many(small_keys).all()
        f.delete_many(small_keys)
        assert not f.query_many(small_keys).any()

    def test_no_false_negatives_under_collisions(self):
        f = make(num_counters=128)  # heavy collisions
        keys = [f"c{i}" for i in range(60)]
        f.insert_many(keys)
        assert f.query_many(keys).all()

    def test_increments_in_DL_range(self):
        f = make(L=4)
        for key in range(100):
            for inc in f._increments(key):
                assert 4 <= inc <= 7

    def test_L_validation(self):
        with pytest.raises(ConfigurationError):
            make(L=1)

    def test_count_upper_bound(self):
        f = make()
        for _ in range(5):
            f.insert("dup")
        assert f.count("dup") >= 5

    def test_compatibility_rule(self):
        f = make(L=4)
        # c == v: possible member; 0 < c - v < L: impossible; c - v >= L: possible.
        assert f._compatible(5, 5)
        assert not f._compatible(6, 5)
        assert not f._compatible(8, 5)
        assert f._compatible(9, 5)
        assert not f._compatible(0, 4)
        assert not f._compatible(3, 4)

    def test_underflow(self):
        f = make()
        with pytest.raises(CounterUnderflowError):
            f.delete("ghost")

    def test_bulk_underflow_rolls_back(self, small_keys):
        # A lightly loaded filter: the ghost's counters are zero, so the
        # batch delete must detect the underflow and roll back.  (On a
        # heavily loaded filter a wrong delete can pass undetected —
        # the classic CBF deletion hazard, which VI-CBF only reduces.)
        f = make(num_counters=1 << 14)
        f.insert_many(small_keys[:5])
        before = f._counters.copy()
        with pytest.raises(CounterUnderflowError):
            f.delete_many(["ghost"])
        np.testing.assert_array_equal(f._counters, before)

    def test_overflow(self):
        f = make(num_counters=64, k=1, counter_bits=4)  # limit 15
        for _ in range(2):
            f.insert("same")  # each insert adds 4..7
        with pytest.raises(CounterOverflowError):
            for _ in range(3):
                f.insert("same")

    def test_bulk_scalar_agreement(self, small_keys, negative_keys):
        a, b = make(seed=7), make(seed=7)
        a.insert_many(small_keys)
        for key in small_keys:
            b.insert(key)
        np.testing.assert_array_equal(a._counters, b._counters)
        bulk = a.query_many(negative_keys[:500])
        scalar = np.array([b.query_encoded(int(k)) for k in negative_keys[:500]])
        np.testing.assert_array_equal(bulk, scalar)

    def test_lower_fpr_than_cbf_at_equal_counters(self, rng):
        # VI-CBF's claim [23]: fewer false positives than CBF with the
        # same number of counters (it uses more bits per counter).
        from repro.filters.cbf import CountingBloomFilter

        n, m = 3000, 8192
        members = rng.integers(1, 2**62, size=n).astype(np.uint64)
        negatives = (
            rng.integers(1, 2**62, size=200_000).astype(np.uint64)
            | np.uint64(1 << 63)
        )
        vi = make(num_counters=m, k=3, seed=2)
        cbf = CountingBloomFilter(m, 3, seed=2)
        vi.insert_many(members)
        cbf.insert_many(members)
        assert (
            vi.query_many(negatives).mean() < cbf.query_many(negatives).mean()
        )

    def test_total_bits(self):
        f = make(num_counters=100, counter_bits=8)
        assert f.total_bits == 800
