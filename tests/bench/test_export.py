"""Tests for report export (JSON / Markdown)."""

from __future__ import annotations

import json

from repro.bench.export import (
    report_from_json,
    report_to_json,
    report_to_markdown,
    write_reports,
)
from repro.bench.reporting import ExperimentReport


def _sample() -> ExperimentReport:
    report = ExperimentReport(
        "figX", "Sample", paper="something should hold"
    )
    report.add(x=1, fpr=2.5e-4)
    report.add(x=2, fpr=1.0e-4)
    report.note("it held")
    return report


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self):
        original = _sample()
        restored = report_from_json(report_to_json(original))
        assert restored.experiment_id == original.experiment_id
        assert restored.title == original.title
        assert restored.paper == original.paper
        assert restored.rows == original.rows
        assert restored.notes == original.notes

    def test_json_is_valid(self):
        data = json.loads(report_to_json(_sample()))
        assert data["experiment_id"] == "figX"
        assert len(data["rows"]) == 2

    def test_renders_identically_after_round_trip(self):
        original = _sample()
        restored = report_from_json(report_to_json(original))
        assert restored.render() == original.render()


class TestMarkdown:
    def test_structure(self):
        md = report_to_markdown(_sample())
        assert md.startswith("### figX: Sample")
        assert "> paper: something should hold" in md
        assert "| x | fpr |" in md
        assert "2.500e-04" in md
        assert "*it held*" in md

    def test_empty_report(self):
        md = report_to_markdown(ExperimentReport("e", "Empty"))
        assert "### e: Empty" in md
        assert "|" not in md

    def test_explicit_columns(self):
        report = ExperimentReport("c", "Cols", columns=["fpr"])
        report.add(x=1, fpr=0.5)
        md = report_to_markdown(report)
        assert "| fpr |" in md
        assert "| x |" not in md


class TestWriteReports:
    def test_writes_json_and_markdown(self, tmp_path):
        a, b = _sample(), ExperimentReport("figY", "Other")
        b.add(y=3)
        md_path = write_reports([a, b], tmp_path)
        assert (tmp_path / "figX.json").exists()
        assert (tmp_path / "figY.json").exists()
        text = md_path.read_text()
        assert "### figX" in text and "### figY" in text

    def test_json_files_loadable(self, tmp_path):
        write_reports([_sample()], tmp_path)
        restored = report_from_json((tmp_path / "figX.json").read_text())
        assert restored.rows[0]["x"] == 1
