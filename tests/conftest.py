"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.hashing.encoders import KeyEncoder

_SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Every daemon prints exactly one "listening on <host>:<port>" line once
#: its socket is bound; with ``--port 0`` the kernel picks the port, so
#: reading it back is race-free (unlike probe-then-bind schemes).
_PORT_LINE = re.compile(r"listening on [\w.\-]+:(\d+)")


def wait_for_port(proc: subprocess.Popen, *, timeout_s: float = 30.0) -> int:
    """Read a spawned daemon's stdout until it reports its bound port."""
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _PORT_LINE.search(line)
        if match:
            return int(match.group(1))
    raise RuntimeError("daemon never reported its bound port")


def spawn_cli_daemon(
    cli_args: list[str], *, timeout_s: float = 30.0
) -> tuple[subprocess.Popen, int]:
    """Spawn ``python -m repro.cli <args>`` and return (proc, bound port).

    Callers pass ``--port 0`` in ``cli_args``; the helper parses the
    readback line.  On failure the subprocess is killed before raising.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *cli_args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = wait_for_port(proc, timeout_s=timeout_s)
    except Exception:
        proc.kill()
        proc.wait(timeout=10)
        raise
    return proc, port


@pytest.fixture
def spawn_daemon():
    """Function fixture wrapping :func:`spawn_cli_daemon` with cleanup.

    Any daemon still alive at teardown is killed, so a failing test
    cannot leak listeners into later tests.
    """
    procs: list[subprocess.Popen] = []

    def _spawn(cli_args: list[str], *, timeout_s: float = 30.0):
        proc, port = spawn_cli_daemon(cli_args, timeout_s=timeout_s)
        procs.append(proc)
        return proc, port

    yield _spawn
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def encoder() -> KeyEncoder:
    return KeyEncoder()


@pytest.fixture
def small_keys() -> list[str]:
    """A handful of distinct string keys."""
    return [f"key-{i:04d}" for i in range(200)]


@pytest.fixture
def encoded_keys(small_keys, encoder) -> np.ndarray:
    return encoder.encode_many(small_keys)


@pytest.fixture
def negative_keys(encoder) -> np.ndarray:
    """Keys guaranteed disjoint from ``small_keys``."""
    return encoder.encode_many([f"neg-{i:05d}" for i in range(5000)])
