"""Overload timing driven by the chaos harness's SimClock.

The FakeClock in conftest.py predates :mod:`repro.chaos`; these tests
plug the real simulation clock into the ``clock=`` seams to pin down
the *timing* contracts — cooldown boundaries, probe budgets, refill
rates, hysteresis — at exact virtual instants.
"""

from __future__ import annotations

import pytest

from repro.chaos import SimClock
from repro.errors import OverloadedError
from repro.overload.admission import AdmissionController, TokenBucket
from repro.overload.breaker import BreakerState, CircuitBreaker


def tripped_breaker(clock: SimClock, **kwargs) -> CircuitBreaker:
    breaker = CircuitBreaker(
        failure_threshold=3, cooldown_s=5.0, clock=clock, **kwargs
    )
    for _ in range(3):
        breaker.allow()
        breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    return breaker


class TestBreakerHalfOpenTiming:
    def test_open_rejects_with_exact_remaining_cooldown(self):
        clock = SimClock(start=100.0)
        breaker = tripped_breaker(clock)
        clock.advance(1.5)
        with pytest.raises(OverloadedError) as exc:
            breaker.allow()
        assert exc.value.retry_after_s == pytest.approx(3.5)

    def test_probe_admitted_exactly_at_cooldown_boundary(self):
        clock = SimClock(start=100.0)
        breaker = tripped_breaker(clock)
        clock.advance(4.999)
        with pytest.raises(OverloadedError):
            breaker.allow()
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.001)
        breaker.allow()  # first call at the boundary becomes the probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_budget_admits_probes_rejects_rest(self):
        clock = SimClock(start=0.0)
        breaker = tripped_breaker(clock, half_open_probes=2)
        clock.advance(5.0)
        breaker.allow()
        breaker.allow()
        with pytest.raises(OverloadedError):
            breaker.allow()
        assert breaker.rejections >= 1

    def test_failed_probe_restarts_cooldown_from_probe_time(self):
        clock = SimClock(start=0.0)
        breaker = tripped_breaker(clock)
        clock.advance(5.0)
        breaker.allow()
        breaker.record_failure()  # probe failed at t=5
        assert breaker.state is BreakerState.OPEN
        clock.advance(4.5)  # t=9.5: new cooldown runs until t=10
        with pytest.raises(OverloadedError) as exc:
            breaker.allow()
        assert exc.value.retry_after_s == pytest.approx(0.5)
        clock.advance(0.5)
        breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_state_code_reports_half_open_once_cooldown_expires(self):
        # Dashboards see recovery begin even with zero traffic.
        clock = SimClock(start=0.0)
        breaker = tripped_breaker(clock)
        assert breaker.state_code == BreakerState.OPEN.value
        clock.advance(5.0)
        assert breaker.state_code == BreakerState.HALF_OPEN.value
        assert breaker.state is BreakerState.OPEN  # spirit, not letter


class TestTokenBucketRefillTiming:
    def test_refill_is_linear_in_virtual_time(self):
        clock = SimClock(start=50.0)
        bucket = TokenBucket(rate=10.0, burst=20.0, clock=clock)
        assert bucket.try_acquire(20.0)
        assert not bucket.try_acquire(1.0)
        clock.advance(0.5)  # 5 tokens back
        assert bucket.try_acquire(5.0)
        assert not bucket.try_acquire(0.5)

    def test_wait_time_matches_deficit_over_rate(self):
        clock = SimClock(start=0.0)
        bucket = TokenBucket(rate=4.0, burst=8.0, clock=clock)
        assert bucket.try_acquire(8.0)
        assert bucket.wait_time(6.0) == pytest.approx(1.5)
        clock.advance(1.5)
        assert bucket.try_acquire(6.0)


class TestAdmissionHysteresis:
    def make(self, clock: SimClock) -> AdmissionController:
        return AdmissionController(
            max_inflight=10, high_water=0.8, low_water=0.5, clock=clock
        )

    def test_degraded_entered_at_high_water_exited_below_low_water(self):
        control = self.make(SimClock())
        for _ in range(8):
            control.admit("insert", 1)
        # At high water: next mutation sheds, queries still admit.
        with pytest.raises(OverloadedError, match="reads only"):
            control.admit("insert", 1)
        control.admit("query", 1)
        control.release()
        # Hysteresis: drops below high water but not to low water yet.
        for _ in range(2):
            control.release()
        assert control.inflight == 6
        with pytest.raises(OverloadedError, match="reads only"):
            control.admit("insert", 1)
        # At/below low water full service resumes.
        control.release()
        assert control.inflight == 5
        control.admit("insert", 1)
        assert not control.degraded

    def test_rate_limit_hint_rides_virtual_clock(self):
        clock = SimClock(start=0.0)
        # Inserts cost 4 tokens/key, so 2 keys drain the 8-token burst.
        bucket = TokenBucket(rate=8.0, burst=8.0, clock=clock)
        control = AdmissionController(
            max_inflight=10, bucket=bucket, clock=clock
        )
        control.admit("insert", 2)
        with pytest.raises(OverloadedError) as exc:
            control.admit("insert", 2)
        assert exc.value.retry_after_s == pytest.approx(1.0)
        clock.advance(1.0)
        control.admit("insert", 2)
