"""Unit tests for the Prometheus text-exposition renderer and parser."""

from __future__ import annotations

import pytest

from repro.filters.factory import FilterSpec, build_filter
from repro.observability.prometheus import (
    escape_label_value,
    parse_exposition,
    render_metrics,
)
from repro.service.metrics import Histogram, ServiceMetrics


def make_metrics() -> ServiceMetrics:
    metrics = ServiceMetrics()
    metrics.record_op("QUERY", 120.0)
    metrics.record_op("QUERY", 450.0)
    metrics.record_op("INSERT", 80.0)
    metrics.record_error("COUNTER_UNDERFLOW")
    metrics.record_batch(3, 48)
    metrics.observe_span("filter_execute", 200.0)
    metrics.bytes_in = 1000
    metrics.bytes_out = 2000
    metrics.connections_opened = 4
    metrics.connections_active = 2
    return metrics


def make_filter():
    filt = build_filter(
        FilterSpec(variant="MPCBF-1", memory_bits=8 * 8192, k=3, capacity=500, seed=3)
    )
    filt.insert_many([b"k%d" % i for i in range(100)])
    filt.query_many([b"k%d" % i for i in range(50)])
    return filt


class TestRenderMetrics:
    def test_document_parses(self):
        text = render_metrics(make_metrics(), make_filter())
        families = parse_exposition(text)
        assert families  # non-empty, and no line raised

    def test_counter_families_present_and_typed(self):
        text = render_metrics(make_metrics(), make_filter())
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_connections_active gauge" in text
        assert "# TYPE repro_request_latency_seconds histogram" in text
        # HELP/TYPE emitted once per family even with many label sets.
        assert text.count("# TYPE repro_request_latency_seconds histogram") == 1

    def test_per_op_counters(self):
        families = parse_exposition(render_metrics(make_metrics()))
        requests = dict(
            (labels["op"], value)
            for labels, value in families["repro_requests_total"]
        )
        assert requests == {"QUERY": 2.0, "INSERT": 1.0}
        errors = families["repro_errors_total"]
        assert errors == [({"code": "COUNTER_UNDERFLOW"}, 1.0)]

    def test_histogram_buckets_cumulative_and_consistent(self):
        families = parse_exposition(render_metrics(make_metrics()))
        buckets = [
            (labels, value)
            for labels, value in families["repro_request_latency_seconds_bucket"]
            if labels.get("op") == "QUERY"
        ]
        values = [value for _, value in buckets]
        assert values == sorted(values), "buckets must be cumulative"
        inf_bucket = [v for labels, v in buckets if labels["le"] == "+Inf"]
        assert inf_bucket == [2.0]
        count = [
            v
            for labels, v in families["repro_request_latency_seconds_count"]
            if labels.get("op") == "QUERY"
        ]
        assert count == [2.0]
        total = [
            v
            for labels, v in families["repro_request_latency_seconds_sum"]
            if labels.get("op") == "QUERY"
        ]
        # 120µs + 450µs exported in seconds.
        assert total[0] == pytest.approx(570e-6)

    def test_access_stats_exported_as_counters(self):
        filt = make_filter()
        families = parse_exposition(render_metrics(make_metrics(), filt))
        accesses = {
            labels["kind"]: value
            for labels, value in families["repro_word_accesses_total"]
        }
        assert accesses["insert"] > 0
        assert accesses["query"] > 0
        ops = {
            labels["kind"]: value
            for labels, value in families["repro_filter_operations_total"]
        }
        assert ops["insert"] == 100.0
        assert ops["query"] == 50.0

    def test_sharded_bank_exports_per_shard_load(self):
        from repro.parallel.sharded import ShardedFilterBank

        bank = ShardedFilterBank(
            FilterSpec(
                variant="MPCBF-1",
                memory_bits=16 * 8192,
                k=3,
                capacity=500,
                seed=3,
                extra={"word_overflow": "saturate"},
            ),
            4,
        )
        bank.insert_many([b"s%d" % i for i in range(200)])
        families = parse_exposition(render_metrics(make_metrics(), bank))
        shard_inserts = [
            value
            for labels, value in families["repro_shard_operations_total"]
            if labels["kind"] == "insert"
        ]
        assert len(shard_inserts) == 4
        assert sum(shard_inserts) == 200.0

    def test_snapshot_age_gauge(self, tmp_path):
        from repro.service.snapshot import SnapshotManager

        manager = SnapshotManager(make_filter(), tmp_path / "f.snap")
        text = render_metrics(make_metrics(), snapshots=manager)
        assert "repro_snapshot_age_seconds" not in text  # nothing saved yet
        manager.save_now()
        families = parse_exposition(render_metrics(make_metrics(), snapshots=manager))
        (labels, age), = families["repro_snapshot_age_seconds"]
        assert 0.0 <= age < 60.0
        (_, size), = families["repro_snapshot_bytes"]
        assert size > 0

    def test_empty_registry_renders_valid_document(self):
        text = render_metrics(ServiceMetrics())
        families = parse_exposition(text)
        assert families["repro_uptime_seconds"][0][1] >= 0.0


class TestEscapingAndParsing:
    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_parse_roundtrips_escaped_labels(self):
        doc = 'weird_metric{name="a\\"b\\\\c\\nd"} 1\n'
        families = parse_exposition(doc)
        assert families["weird_metric"] == [({"name": 'a"b\\c\nd'}, 1.0)]

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_exposition("no_value_here\n")
        with pytest.raises(ValueError):
            parse_exposition('unterminated{label="x 1\n')
        with pytest.raises(ValueError):
            parse_exposition("metric notanumber\n")

    def test_parse_skips_comments_and_blanks(self):
        doc = "# HELP x y\n# TYPE x counter\n\nx 3\n"
        assert parse_exposition(doc) == {"x": [({}, 3.0)]}

    def test_parse_handles_inf(self):
        doc = 'h_bucket{le="+Inf"} 7\n'
        (labels, value), = parse_exposition(doc)["h_bucket"]
        assert labels == {"le": "+Inf"}
        assert value == 7.0

    def test_histogram_bucket_bound_uses_bucket_upper(self):
        hist = Histogram()
        hist.observe(3.0)  # bucket 2: [2, 4)
        metrics = ServiceMetrics()
        metrics.spans["probe"] = hist
        families = parse_exposition(render_metrics(metrics))
        bounds = [
            labels["le"]
            for labels, _ in families["repro_span_duration_seconds_bucket"]
        ]
        # µs → s scaling: bucket 2's upper bound 4 µs renders as 4e-06.
        assert "4e-06" in bounds
