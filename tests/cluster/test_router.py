"""Router tests: ring placement, fan-out, fallback reads, cluster client."""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster.cluster_client import ClusterClient
from repro.cluster.router import (
    HashRing,
    NodeAddress,
    RouterBackend,
    ShardGroup,
    parse_group,
    parse_node,
)
from repro.errors import ClusterError, ConfigurationError
from repro.filters.factory import FilterSpec, build_filter
from repro.service.client import AsyncFilterClient
from repro.service.server import FilterServer


def build(seed=3):
    return build_filter(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=64 * 8192,
            k=3,
            capacity=4000,
            seed=seed,
            extra={"word_overflow": "saturate"},
        )
    )


class TestParsing:
    def test_parse_node_variants(self):
        assert parse_node("10.0.0.1:7801") == NodeAddress("10.0.0.1", 7801)
        node = parse_node("localhost:7801/9464")
        assert node.health_port == 9464
        assert node.health_url() == "http://localhost:9464/healthz"
        for bad in ("nohost", "host:notaport", ":7801"):
            with pytest.raises(ConfigurationError):
                parse_node(bad)

    def test_parse_group(self):
        group = parse_group("a=h1:1,h2:2,h3:3")
        assert group.name == "a"
        assert group.primary.address == "h1:1"
        assert [r.address for r in group.replicas] == ["h2:2", "h3:3"]
        with pytest.raises(ConfigurationError):
            parse_group("missing-equals")


def ring_of(names, vnodes=64):
    return HashRing(
        [
            ShardGroup(name, NodeAddress("127.0.0.1", 1 + i))
            for i, name in enumerate(names)
        ],
        vnodes=vnodes,
    )


class TestHashRing:
    def test_lookup_is_deterministic_and_total(self):
        ring = ring_of(["a", "b", "c"])
        keys = [b"key-%d" % i for i in range(1000)]
        first = [ring.lookup(k).name for k in keys]
        second = [ring.lookup(k).name for k in keys]
        assert first == second
        assert set(first) == {"a", "b", "c"}

    def test_vnodes_balance_load(self):
        ring = ring_of(["a", "b", "c", "d"], vnodes=128)
        keys = [b"bal-%d" % i for i in range(4000)]
        counts = {name: 0 for name in "abcd"}
        for key in keys:
            counts[ring.lookup(key).name] += 1
        for count in counts.values():
            assert 0.5 * 1000 < count < 1.7 * 1000
        fractions = ring.load_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_adding_a_group_moves_a_minority_of_keys(self):
        before = ring_of(["a", "b", "c"])
        after = ring_of(["a", "b", "c", "d"])
        keys = [b"move-%d" % i for i in range(2000)]
        moved = sum(
            1
            for k in keys
            if before.lookup(k).name != after.lookup(k).name
        )
        # Consistent hashing: ~1/4 of keys move, never a majority.
        assert moved < len(keys) // 2

    def test_duplicate_group_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_of(["a", "a"])
        with pytest.raises(ConfigurationError):
            HashRing([], vnodes=8)


async def start_node(filt=None, **kwargs) -> FilterServer:
    server = FilterServer(filt if filt is not None else build(), **kwargs)
    await server.start()
    return server


class TestRouterFanout:
    def test_routing_matches_oracle_across_two_groups(self):
        async def main():
            node_a = await start_node(build(1))
            node_b = await start_node(build(2))
            ring = HashRing(
                [
                    ShardGroup("a", NodeAddress("127.0.0.1", node_a.port)),
                    ShardGroup("b", NodeAddress("127.0.0.1", node_b.port)),
                ],
                vnodes=32,
            )
            backend = RouterBackend(ring)
            router = FilterServer(backend)
            await router.start()
            members = [b"member-%d" % i for i in range(400)]
            absent = [b"absent-%d" % i for i in range(2000)]
            async with AsyncFilterClient(port=router.port) as client:
                await client.insert_many(members)
                answers = await client.query_many(members)
                assert all(answers)  # no false negatives through the ring
                false_positives = sum(await client.query_many(absent))
                assert false_positives < len(absent) * 0.05
                await client.delete_many(members[:100])
                stats = await client.stats()
            assert stats["router"]["ring"]["groups"] == ["a", "b"]
            routed = stats["router"]["routed_keys"]
            assert sum(
                count for name, count in routed.items() if "/insert" in name
            ) == len(members)
            # Both groups actually took traffic.
            assert backend.routed_keys[("a", "insert")] > 0
            assert backend.routed_keys[("b", "insert")] > 0
            # The nodes only saw their own partition.
            async with AsyncFilterClient(port=node_a.port) as direct:
                direct_stats = await direct.stats()
            node_a_inserts = direct_stats["filter"]["access_stats"]["insert"][
                "operations"
            ]
            assert 0 < node_a_inserts < len(members)
            assert server_role(router) == "router"
            await router.stop()
            backend.close()
            await node_a.stop()
            await node_b.stop()

        asyncio.run(main())

    def test_reads_fall_back_to_replica_writes_fail_fast(self):
        async def main():
            primary = await start_node(build(5))
            replica = await start_node(build(5))
            members = [b"fo-%d" % i for i in range(100)]
            # Pre-populate both nodes identically (stand-in for
            # replication, which test_failover exercises for real).
            for node in (primary, replica):
                async with AsyncFilterClient(port=node.port) as client:
                    await client.insert_many(members)
            ring = HashRing(
                [
                    ShardGroup(
                        "g",
                        NodeAddress("127.0.0.1", primary.port),
                        (NodeAddress("127.0.0.1", replica.port),),
                    )
                ],
                vnodes=8,
            )
            backend = RouterBackend(ring, timeout_s=1.0)
            router = FilterServer(backend)
            await router.start()
            async with AsyncFilterClient(port=router.port) as client:
                assert all(await client.query_many(members))
                assert backend.fallback_reads == 0
                await primary.abort()
                # Reads survive the dead primary via the replica.
                assert all(await client.query_many(members))
                assert backend.fallback_reads == len(members)
                # Writes have no failover target: typed error, fast.
                from repro.service.protocol import RemoteError

                with pytest.raises(RemoteError) as excinfo:
                    await client.insert(b"new-key")
                assert excinfo.value.code.name == "CLUSTER"
            await router.stop()
            backend.close()
            await replica.stop()

        asyncio.run(main())


def server_role(server: FilterServer) -> str:
    return server.role


class TestClusterClient:
    def test_client_side_routing_round_trip(self):
        async def main():
            node_a = await start_node(build(8))
            node_b = await start_node(build(9))
            loop = asyncio.get_running_loop()

            def drive():
                with ClusterClient(
                    [
                        f"a=127.0.0.1:{node_a.port}",
                        f"b=127.0.0.1:{node_b.port}",
                    ],
                    vnodes=16,
                ) as client:
                    client.insert_many([f"cc-{i}" for i in range(200)])
                    client.insert("single")
                    assert client.query("single") is True
                    assert all(
                        client.query_many([f"cc-{i}" for i in range(200)])
                    )
                    client.delete("single")
                    status = client.status()
                    assert status["router"]["ring"]["groups"] == ["a", "b"]
                    roles = {
                        info.get("role")
                        for info in status["nodes"].values()
                    }
                    assert roles == {"single"}

            await loop.run_in_executor(None, drive)
            await node_a.stop()
            await node_b.stop()

        asyncio.run(main())

    def test_unreachable_group_raises_cluster_error(self):
        with ClusterClient(["dead=127.0.0.1:1"], timeout_s=0.2) as client:
            with pytest.raises(ClusterError):
                client.insert_many([b"x"])

    def test_breaker_rejection_never_masks_transport_errors(self):
        # Transport failures feed the write breaker, so a plain dead
        # group can open it mid-retry-loop; exhausting the budget on the
        # breaker's *local* rejection must still report the real cause.
        from repro.errors import OverloadedError

        with ClusterClient(
            ["dead=127.0.0.1:1"], timeout_s=0.2, retries=3, backoff_s=0.001
        ) as client:
            attempts = []

            def dead_then_breaker_open():
                attempts.append(1)
                if len(attempts) < 3:
                    raise ClusterError("primary unreachable")
                raise OverloadedError("breaker open", retry_after_s=0.001)

            with pytest.raises(ClusterError, match="unreachable"):
                client._with_retry(dead_then_breaker_open)
            assert len(attempts) == 3
