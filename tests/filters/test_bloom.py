"""Tests for the standard Bloom filter baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fpr import bf_fpr
from repro.errors import ConfigurationError
from repro.filters.bloom import BloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self, small_keys):
        bf = BloomFilter(4096, 3, seed=1)
        for key in small_keys:
            bf.insert(key)
        assert all(bf.query(key) for key in small_keys)

    def test_contains_protocol(self):
        bf = BloomFilter(1024, 3)
        bf.insert("x")
        assert "x" in bf

    def test_empty_filter_rejects_everything(self, negative_keys):
        bf = BloomFilter(4096, 3)
        assert not bf.query_many(negative_keys).any()

    def test_bulk_matches_scalar(self, small_keys, negative_keys):
        a = BloomFilter(2048, 3, seed=7)
        b = BloomFilter(2048, 3, seed=7)
        a.insert_many(small_keys)
        for key in small_keys:
            b.insert(key)
        np.testing.assert_array_equal(a._bits, b._bits)
        bulk = a.query_many(negative_keys)
        scalar = np.array([b.query_encoded(int(k)) for k in negative_keys])
        np.testing.assert_array_equal(bulk, scalar)

    def test_fpr_close_to_eq1(self, rng):
        n, m, k = 2000, 16384, 3
        bf = BloomFilter(m, k, seed=3)
        keys = rng.integers(0, 2**63, size=n, dtype=np.int64)
        bf.insert_many(keys.astype(np.uint64) | np.uint64(1 << 63))
        negatives = rng.integers(0, 2**62, size=100_000, dtype=np.int64)
        measured = float(bf.query_many(negatives).mean())
        expected = bf_fpr(n, m, k)
        assert measured == pytest.approx(expected, rel=0.3)

    def test_fill_ratio(self):
        bf = BloomFilter(100, 2)
        assert bf.fill_ratio == 0.0
        bf.insert("a")
        assert 0 < bf.fill_ratio <= 0.02

    def test_query_stats_early_exit(self, negative_keys):
        bf = BloomFilter(1 << 16, 4)
        bf.query_many(negative_keys)
        # Empty filter: every query fails on its first bit test.
        assert bf.stats.query.mean_accesses == pytest.approx(1.0)

    def test_insert_stats(self, small_keys):
        bf = BloomFilter(4096, 3)
        bf.insert_many(small_keys)
        assert bf.stats.insert.operations == len(small_keys)
        assert bf.stats.insert.mean_accesses == 3.0

    def test_total_bits_and_k(self):
        bf = BloomFilter(12345, 5)
        assert bf.total_bits == 12345
        assert bf.num_hashes == 5

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(0, 3)

    def test_empty_bulk_ops(self):
        bf = BloomFilter(64, 2)
        bf.insert_many(np.zeros(0, dtype=np.uint64))
        assert bf.query_many(np.zeros(0, dtype=np.uint64)).shape == (0,)
