"""``python -m repro.bench`` — print every regenerated table/figure.

Pass experiment ids (``fig7 table4 …``) to run a subset; set
``REPRO_SCALE=paper`` for the paper's exact dataset sizes; pass
``--export DIR`` to also write per-experiment JSON plus a combined
Markdown file (via :mod:`repro.bench.export`).
"""

from __future__ import annotations

import sys

from repro.bench import ablations, experiments
from repro.bench.scale import current_scale

_DRIVERS = {
    "fig2": experiments.fig02,
    "fig5": experiments.fig05,
    "fig6": experiments.fig06,
    "fig7": experiments.fig07,
    "fig8": experiments.fig08,
    "fig9": experiments.fig09,
    "fig10": experiments.fig10,
    "fig11": experiments.fig11,
    "fig12": experiments.fig12,
    "table1": experiments.table1,
    "table2": experiments.table2,
    "table3": experiments.table3,
    "table4": experiments.table4,
    # Beyond the paper: design-choice ablations and the hw projection.
    "hcbf": ablations.ablation_hcbf_layout,
    "sizing": ablations.ablation_sizing,
    "churn": ablations.ablation_churn,
    "hw": ablations.hw_projection,
    "banked": ablations.banked_traffic,
}


def main(argv: list[str]) -> int:
    scale = current_scale()
    export_dir = None
    if "--export" in argv:
        idx = argv.index("--export")
        try:
            export_dir = argv[idx + 1]
        except IndexError:
            print("--export requires a directory argument")
            return 2
        argv = argv[:idx] + argv[idx + 2 :]
    wanted = argv or list(_DRIVERS)
    unknown = [w for w in wanted if w not in _DRIVERS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {list(_DRIVERS)}")
        return 2
    print(f"scale: {scale.name}")
    reports = []
    for name in wanted:
        report = _DRIVERS[name](scale)
        reports.append(report)
        print()
        print(report.render())
    if export_dir is not None:
        from repro.bench.export import write_reports

        md_path = write_reports(reports, export_dir)
        print(f"\nexported {len(reports)} report(s) -> {md_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
