"""Micro-benchmarks: per-variant insert / query / delete throughput.

Not a paper figure — engineering benchmarks guarding the bulk fast
paths (the NumPy mirror gather, the grouped bincount counter updates,
and the scalar HCBF hierarchy walk) against regressions.

``test_kernel_speedup`` additionally measures the columnar update
kernels (:mod:`repro.kernels`) against the scalar reference backend on
the same key stream and writes ``results/ops-kernels.json``.  It is
the CI regression gate for the kernel layer: the columnar backend must
beat the scalar one by at least :data:`_KERNEL_FLOOR` on bulk inserts,
at every scale (``REPRO_SCALE=ci`` runs N = 100 000; ``paper`` runs
N = 1 000 000, where the recorded speedups are far larger).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.filters import build_suite
from repro.filters.factory import FilterSpec, build_filter

_MEMORY = 1 << 21
_N = 20_000
_VARIANTS = ["CBF", "PCBF-1", "PCBF-2", "MPCBF-1", "MPCBF-2"]


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    return rng.integers(1, 2**63, size=_N).astype(np.uint64)


@pytest.fixture(scope="module")
def probe_keys():
    rng = np.random.default_rng(1)
    return rng.integers(1, 2**63, size=_N).astype(np.uint64) | np.uint64(1 << 63)


@pytest.mark.parametrize("variant", _VARIANTS)
def test_bulk_insert(benchmark, variant, keys):
    benchmark.group = "bulk-insert"

    def build_and_fill():
        suite = build_suite([variant], _MEMORY, 3, capacity=_N, seed=0)
        suite[variant].insert_many(keys)
        return suite[variant]

    filt = benchmark(build_and_fill)
    assert filt.query_encoded(int(keys[0]))


@pytest.mark.parametrize("variant", _VARIANTS)
def test_bulk_query(benchmark, variant, keys, probe_keys):
    benchmark.group = "bulk-query"
    suite = build_suite([variant], _MEMORY, 3, capacity=_N, seed=0)
    filt = suite[variant]
    filt.insert_many(keys)
    result = benchmark(filt.query_many, probe_keys)
    assert len(result) == _N


@pytest.mark.parametrize("variant", ["CBF", "PCBF-1", "MPCBF-1"])
def test_scalar_query(benchmark, variant, keys):
    benchmark.group = "scalar-query"
    suite = build_suite([variant], _MEMORY, 3, capacity=_N, seed=0)
    filt = suite[variant]
    filt.insert_many(keys)
    key = int(keys[123])
    assert benchmark(filt.query_encoded, key)


@pytest.mark.parametrize("variant", ["CBF", "PCBF-1", "MPCBF-1", "MPCBF-2"])
def test_bulk_delete(benchmark, variant, keys):
    benchmark.group = "bulk-delete"

    def cycle():
        suite = build_suite([variant], _MEMORY, 3, capacity=_N, seed=0)
        filt = suite[variant]
        filt.insert_many(keys)
        filt.delete_many(keys)
        return filt

    filt = benchmark(cycle)
    assert not filt.query_encoded(int(keys[0]))


# -- scalar vs columnar kernels (results/ops-kernels.json) -------------

#: Minimum columnar/scalar throughput ratio on bulk inserts — the CI
#: regression floor.  Real speedups are far higher at paper scale; the
#: floor only has to survive noisy shared CI runners at N = 100k.
_KERNEL_FLOOR = 1.5

_RESULTS_PATH = Path(__file__).resolve().parents[1] / "results"

#: ~16 bits of filter memory per key keeps both variants comfortably
#: under their saturation knees at every scale.
_BITS_PER_KEY = 16


def _kernel_filter(variant: str, kernel: str, n: int):
    extra = {"kernel": kernel}
    if variant.startswith("MPCBF"):
        extra["word_overflow"] = "saturate"
    return build_filter(
        FilterSpec(
            variant=variant,
            memory_bits=_BITS_PER_KEY * n,
            k=4,
            capacity=n,
            seed=7,
            extra=extra,
        )
    )


def _time_ops(variant: str, kernel: str, keys: np.ndarray) -> dict:
    """One build + insert/query/count/delete cycle, seconds per op."""
    filt = _kernel_filter(variant, kernel, len(keys))
    timings = {}
    started = time.perf_counter()
    filt.insert_many(keys)
    timings["insert_many"] = time.perf_counter() - started
    # Read-only ops are repeatable: take the best of two passes so the
    # first pass's cache warm-up does not masquerade as a kernel delta.
    member = counts = None
    for op, call in (("query_many", filt.query_many), ("count_many", filt.count_many)):
        best = np.inf
        for _ in range(2):
            started = time.perf_counter()
            result = call(keys)
            best = min(best, time.perf_counter() - started)
        timings[op] = best
        member = result if op == "query_many" else member
        counts = result if op == "count_many" else counts
    started = time.perf_counter()
    filt.delete_many(keys)
    timings["delete_many"] = time.perf_counter() - started
    assert bool(member.all())
    assert int(counts.min()) >= 1
    return timings


def kernel_speedup(scale) -> dict:
    n = scale.synth_queries  # ci: 100k, paper: 1M, quick: 20k
    rng = np.random.default_rng(42)
    keys = rng.integers(1, 2**63, size=n).astype(np.uint64)
    rows = []
    for variant in ("MPCBF-2", "CBF"):
        scalar = _time_ops(variant, "scalar", keys)
        columnar = _time_ops(variant, "columnar", keys)
        for op in scalar:
            rows.append(
                {
                    "variant": variant,
                    "op": op,
                    "scalar_s": round(scalar[op], 4),
                    "columnar_s": round(columnar[op], 4),
                    "scalar_mkeys_per_s": round(n / scalar[op] / 1e6, 3),
                    "columnar_mkeys_per_s": round(n / columnar[op] / 1e6, 3),
                    "speedup": round(scalar[op] / columnar[op], 2),
                }
            )
    return {"scale": scale.name, "n": n, "floor": _KERNEL_FLOOR, "rows": rows}


def test_kernel_speedup(benchmark, scale, capsys):
    from benchmarks.conftest import run_once

    payload = run_once(benchmark, kernel_speedup, scale)
    _RESULTS_PATH.mkdir(exist_ok=True)
    out = _RESULTS_PATH / "ops-kernels.json"
    out.write_text(json.dumps(payload, indent=2))
    with capsys.disabled():
        print()
        print(f"{'variant':>8} {'op':>12} {'scalar Mk/s':>12} "
              f"{'columnar Mk/s':>14} {'speedup':>8}")
        for row in payload["rows"]:
            print(
                f"{row['variant']:>8} {row['op']:>12} "
                f"{row['scalar_mkeys_per_s']:>12.3f} "
                f"{row['columnar_mkeys_per_s']:>14.3f} {row['speedup']:>8.2f}"
            )
    by_key = {(r["variant"], r["op"]): r for r in payload["rows"]}
    for variant in ("MPCBF-2", "CBF"):
        row = by_key[(variant, "insert_many")]
        assert row["speedup"] >= _KERNEL_FLOOR, (
            f"{variant} columnar insert_many regressed below "
            f"{_KERNEL_FLOOR}x scalar: {row}"
        )


def test_hcbf_word_insert_delete(benchmark):
    """Hot loop of the scalar path: one hierarchy insert+delete."""
    from repro.filters.hcbf_word import HCBFWord

    benchmark.group = "hcbf-word"
    word = HCBFWord(64, 40)
    for pos in (1, 5, 9, 13):
        word.insert_bit(pos)

    def cycle():
        word.insert_bit(5)
        word.delete_bit(5)

    benchmark(cycle)
    word.check_invariants()
