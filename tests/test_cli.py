"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.serialize import load_filter


@pytest.fixture
def keys_file(tmp_path):
    path = tmp_path / "keys.txt"
    path.write_text("\n".join(f"key-{i}" for i in range(500)) + "\n")
    return str(path)


@pytest.fixture
def probes_file(tmp_path):
    path = tmp_path / "probes.txt"
    lines = [f"key-{i}" for i in range(100)] + [f"nope-{i}" for i in range(100)]
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestBuildAndQuery:
    def test_build_creates_loadable_filter(self, tmp_path, keys_file, capsys):
        out = str(tmp_path / "f.mpcbf")
        rc = main(
            ["build", "--variant", "MPCBF-1", "--keys", keys_file, "--out", out]
        )
        assert rc == 0
        assert "built MPCBF-1" in capsys.readouterr().out
        filt = load_filter((tmp_path / "f.mpcbf").read_bytes())
        assert filt.query(b"key-0")
        assert not filt.query(b"definitely-not-there")

    def test_query_counts_positives(self, tmp_path, keys_file, probes_file, capsys):
        out = str(tmp_path / "f.mpcbf")
        main(["build", "--keys", keys_file, "--out", out])
        capsys.readouterr()
        rc = main(["query", "--filter", out, "--keys", probes_file])
        assert rc == 0
        text = capsys.readouterr().out
        # 100 members + possible (rare) false positives out of 200.
        count = int(text.split(":")[1].split("/")[0].strip())
        assert 100 <= count <= 110

    def test_query_verbose_lists_keys(self, tmp_path, keys_file, capsys):
        out = str(tmp_path / "f.cbf")
        main(["build", "--variant", "CBF", "--keys", keys_file, "--out", out])
        capsys.readouterr()
        main(["query", "--filter", out, "--keys", keys_file, "--verbose"])
        text = capsys.readouterr().out
        assert "key-0\tmaybe" in text

    @pytest.mark.parametrize("variant", ["CBF", "PCBF-2", "MPCBF-2", "BF"])
    def test_variants_round_trip(self, tmp_path, keys_file, variant, capsys):
        out = str(tmp_path / "f.bin")
        rc = main(
            ["build", "--variant", variant, "--keys", keys_file, "--out", out]
        )
        assert rc == 0
        rc = main(["query", "--filter", out, "--keys", keys_file])
        assert rc == 0
        text = capsys.readouterr().out
        assert "500/500" in text  # no false negatives

    def test_missing_keys_file(self, tmp_path, capsys):
        rc = main(
            ["build", "--keys", str(tmp_path / "nope.txt"), "--out", "x"]
        )
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestPlan:
    def test_plan_outputs_design(self, capsys):
        rc = main(["plan", "--n", "10000", "--target-fpr", "1e-3"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "cheapest MPCBF" in text
        assert "standard CBF" in text

    def test_impossible_plan_fails_cleanly(self, capsys):
        rc = main(["plan", "--n", "10000", "--target-fpr", "1e-30"])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestWorkload:
    def test_synthetic(self, tmp_path, capsys):
        out = tmp_path / "w.txt"
        rc = main(
            [
                "workload", "synthetic", "--members", "300",
                "--out", str(out),
            ]
        )
        assert rc == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 300
        assert len(set(lines)) == 300

    def test_trace(self, tmp_path):
        out = tmp_path / "t.txt"
        rc = main(
            ["workload", "trace", "--members", "200", "--out", str(out)]
        )
        assert rc == 0
        lines = out.read_text().splitlines()
        assert len(lines) >= 200
        assert all("." in line for line in lines[:10])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_subcommand_listed(self):
        args = build_parser().parse_args(["bench", "fig9"])
        assert args.experiments == ["fig9"]

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7757
        assert args.shards == 1
        assert args.max_batch == 512
        assert not args.fuse_mutations

    def test_serve_restore_takes_a_path(self):
        args = build_parser().parse_args(["serve", "--restore", "/tmp/x.snap"])
        assert args.restore == "/tmp/x.snap"

    def test_serve_restore_missing_file_is_clean_error(self, capsys):
        rc = main(["serve", "--restore", "/tmp/definitely-missing.snap"])
        assert rc == 1
        assert "cannot restore" in capsys.readouterr().err

    def test_client_parser_positional_keys(self):
        args = build_parser().parse_args(["client", "query", "a", "b"])
        assert args.action == "query"
        assert args.key == ["a", "b"]


class TestReadKeys:
    def test_streams_lines_and_skips_blanks(self, tmp_path):
        from repro.cli import _read_keys

        path = tmp_path / "keys.txt"
        path.write_text("one\n\ntwo\r\nthree\n")
        assert _read_keys(str(path)) == [b"one", b"two", b"three"]

    def test_client_requires_keys_for_keyed_actions(self, capsys):
        rc = main(["client", "insert", "--port", "1"])
        assert rc == 1
        assert "needs keys" in capsys.readouterr().err

    def test_client_connection_refused_is_clean_error(self, capsys):
        # Port 1 is never listening; retries exhaust quickly enough
        # because backoff caps are small at default settings.
        rc = main(["client", "ping", "--port", "1"])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestServeClientEndToEnd:
    def test_serve_and_client_over_subprocess(self, tmp_path, spawn_daemon):
        import signal

        snap = tmp_path / "served.snap"
        proc, port = spawn_daemon(
            [
                "serve", "--port", "0", "--shards", "2",
                "--snapshot", str(snap),
            ],
            timeout_s=15.0,
        )
        rc = main(["client", "insert", "k1", "k2", "--port", str(port)])
        assert rc == 0
        rc = main(["client", "query", "k1", "k3", "--port", str(port)])
        assert rc == 0
        rc = main(["client", "stats", "--port", str(port)])
        assert rc == 0
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=15) == 0
        # Graceful shutdown wrote the final snapshot.
        assert snap.exists()


class TestBenchSubcommand:
    def test_bench_runs_named_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        rc = main(["bench", "fig9"])
        assert rc == 0
        assert "fig9" in capsys.readouterr().out

    def test_bench_unknown_id(self, capsys):
        rc = main(["bench", "fig99"])
        assert rc == 2


class TestStatsWatch:
    """Ctrl-C out of `client stats --watch` must restore the terminal."""

    class _StubClient:
        calls = 0

        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc_info):
            return False

        def stats(self):
            type(self).calls += 1
            return {"uptime_s": 1.0, "ops": {"insert": 3}}

    def test_ctrl_c_exits_zero_and_leaves_alt_screen(
        self, capsys, monkeypatch
    ):
        import time

        import repro.service.client as client_mod

        self._StubClient.calls = 0
        monkeypatch.setattr(client_mod, "FilterClient", self._StubClient)

        def interrupt(_interval):
            raise KeyboardInterrupt

        monkeypatch.setattr(time, "sleep", interrupt)
        rc = main(["client", "stats", "--watch", "--port", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert self._StubClient.calls == 1
        assert out.startswith("\x1b[?1049h")  # entered the alt screen
        assert out.endswith("\x1b[?1049l")  # ...and left it on Ctrl-C
        assert "insert=3" in out


class TestBrokenPipe:
    """`repro client query ... | grep -q` closes stdout early; the CLI
    must die quietly (no stderr noise) like any pipeline-friendly tool."""

    class _StubClient:
        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc_info):
            return False

        def query_many(self, keys):
            return [True for _ in keys]

    def test_epipe_on_stdout_is_quiet_and_exits_zero(
        self, capsys, monkeypatch
    ):
        import os
        import sys

        import repro.service.client as client_mod

        monkeypatch.setattr(client_mod, "FilterClient", self._StubClient)

        # A stdout whose reader hung up: writes raise EPIPE.  Its
        # fileno is a throwaway devnull fd so the handler's dup2
        # cannot touch the test harness's real stdout.
        spare_fd = os.open(os.devnull, os.O_WRONLY)

        class _GonePipe:
            def write(self, text):
                raise BrokenPipeError(32, "Broken pipe")

            def flush(self):
                pass

            def fileno(self):
                return spare_fd

        monkeypatch.setattr(sys, "stdout", _GonePipe())
        try:
            rc = main(["client", "query", "alpha", "--port", "1"])
        finally:
            monkeypatch.undo()
            os.close(spare_fd)
        assert rc == 0
        assert capsys.readouterr().err == ""
