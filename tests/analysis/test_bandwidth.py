"""Tests for the analytic bandwidth budgets (Tables I-II machinery)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bandwidth import (
    estimated_level_sizes,
    query_budget,
    update_budget,
)
from repro.errors import ConfigurationError

M = 500_000
N = 10_000


class TestQueryBudget:
    def test_cbf(self):
        b = query_budget("CBF", M, 3)
        assert b.memory_accesses == 3.0
        assert b.total_bits == pytest.approx(3 * math.log2(M // 4))

    def test_pcbf(self):
        b = query_budget("PCBF", M, 3, word_bits=64)
        l = M // 64
        assert b.memory_accesses == 1.0
        assert b.total_bits == pytest.approx(math.log2(l) + 3 * math.log2(16))

    def test_mpcbf_uses_b1(self):
        b = query_budget("MPCBF", M, 3, word_bits=64, n=N)
        pc = query_budget("PCBF", M, 3, word_bits=64)
        # b1 > w/4 counters → MPCBF offset bits exceed PCBF's.
        assert b.offset_bits > pc.offset_bits
        assert b.memory_accesses == 1.0

    def test_partitioned_cheaper_than_cbf(self):
        cbf = query_budget("CBF", M, 3)
        for variant in ("PCBF", "MPCBF"):
            assert (
                query_budget(variant, M, 3, n=N).total_bits < cbf.total_bits
            )

    def test_g_scaling(self):
        b1 = query_budget("MPCBF", M, 3, n=N, g=1)
        b2 = query_budget("MPCBF", M, 4, n=N, g=2)
        assert b2.memory_accesses == 2.0
        assert b2.word_select_bits == pytest.approx(2 * b1.word_select_bits)

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            query_budget("XCBF", M, 3)

    def test_mpcbf_needs_n(self):
        with pytest.raises(ConfigurationError):
            query_budget("MPCBF", M, 3)


class TestUpdateBudget:
    def test_cbf_update_equals_query(self):
        assert update_budget("CBF", M, 3) == query_budget("CBF", M, 3)

    def test_mpcbf_update_exceeds_query(self):
        q = query_budget("MPCBF", M, 3, n=N)
        u = update_budget("MPCBF", M, 3, n=N)
        assert u.total_bits > q.total_bits
        assert u.memory_accesses == q.memory_accesses


class TestEstimatedLevelSizes:
    def test_first_level_is_b1(self):
        sizes = estimated_level_sizes(M, 64, 3, n=N)
        from repro.analysis.heuristics import improved_b1, n_max_heuristic

        l = M // 64
        b1 = improved_b1(64, 3, n_max_heuristic(N, l))
        assert sizes[0] == float(b1)

    def test_decreasing(self):
        sizes = estimated_level_sizes(M, 64, 3, n=N)
        assert all(sizes[i] > sizes[i + 1] for i in range(len(sizes) - 1))

    def test_levels_bounded_by_hash_mass(self):
        # Total deeper-level slots cannot exceed hash insertions/word.
        sizes = estimated_level_sizes(M, 64, 3, n=N)
        t = 3 * (N / (M // 64))
        assert sum(sizes[1:]) <= t + 1e-9

    def test_needs_n(self):
        with pytest.raises(ConfigurationError):
            estimated_level_sizes(M, 64, 3)
