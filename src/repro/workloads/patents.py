"""NBER-like patent citation data (§V substitution).

The paper's reduce-side-join experiment joins the NBER citation file
``cite75_99.txt`` (16,522,438 ``citing,cited`` records) against a key
set of 71,661 patents drawn from ``pat63_99.txt``.  The files are not
redistributable here, so this module synthesises datasets with the same
join structure: a universe of patent numbers, a small "patent metadata"
relation whose keys seed the Bloom filter, and a large citation
relation in which only a fraction of ``cited`` values hit the key set
(the paper's measured 35.7% CBF FPR implies most citations *miss*).

See DESIGN.md, substitution #2; the join-relevant behaviour — the hit
ratio and the key-universe size that drives filter FPR — is configurable
and matched in shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PatentDataset", "make_patent_dataset"]

#: Scale of the real NBER files used in the paper.
PAPER_CITATIONS = 16_522_438
PAPER_JOIN_KEYS = 71_661


@dataclass
class PatentDataset:
    """Synthetic patent relations for the reduce-side join.

    Attributes
    ----------
    patents:
        ``(n_keys, 2)`` int64 array: (patent_id, grant_year) — the small
        relation; its ids are the join keys the filter is built from.
    citations:
        ``(n_citations, 2)`` int64 array: (citing_id, cited_id) — the
        large relation streamed through map tasks.
    """

    patents: np.ndarray
    citations: np.ndarray
    seed: int

    @property
    def join_keys(self) -> np.ndarray:
        """Patent ids participating in the join."""
        return self.patents[:, 0]

    def citation_hits(self) -> np.ndarray:
        """Ground truth: which citation rows join (cited ∈ join keys)."""
        keys = np.sort(self.join_keys)
        cited = self.citations[:, 1]
        pos = np.searchsorted(keys, cited)
        pos = np.clip(pos, 0, len(keys) - 1)
        return keys[pos] == cited

    @property
    def hit_ratio(self) -> float:
        """Fraction of citation rows that actually join."""
        return float(self.citation_hits().mean())


def make_patent_dataset(
    *,
    n_keys: int = PAPER_JOIN_KEYS,
    n_citations: int = PAPER_CITATIONS,
    hit_fraction: float = 0.2,
    universe: int = 6_000_000,
    seed: int = 0,
) -> PatentDataset:
    """Build the synthetic patent join inputs.

    Parameters
    ----------
    n_keys:
        Size of the small (filter-building) relation.
    n_citations:
        Size of the large relation.
    hit_fraction:
        Fraction of citations whose ``cited`` id is a join key — the
        paper's joins are selective, which is exactly why Bloom
        filtering pays off.
    universe:
        Patent-id universe; non-joining cited ids are drawn from its
        complement w.r.t. the key set.
    """
    if n_keys > universe // 2:
        raise ConfigurationError(
            f"n_keys={n_keys} too large for universe={universe}"
        )
    if not 0.0 <= hit_fraction <= 1.0:
        raise ConfigurationError(
            f"hit_fraction must be in [0, 1], got {hit_fraction}"
        )
    rng = np.random.default_rng(seed)
    ids = rng.permutation(universe)[: n_keys * 3]
    key_ids = np.sort(ids[:n_keys])
    non_key_pool = ids[n_keys:]
    years = rng.integers(1963, 2000, size=n_keys)
    patents = np.stack([key_ids, years], axis=1).astype(np.int64)

    n_hits = int(round(hit_fraction * n_citations))
    cited_hits = key_ids[rng.integers(0, n_keys, size=n_hits)]
    cited_miss = non_key_pool[
        rng.integers(0, len(non_key_pool), size=n_citations - n_hits)
    ]
    cited = np.concatenate([cited_hits, cited_miss])
    citing = rng.integers(0, universe, size=n_citations)
    order = rng.permutation(n_citations)
    citations = np.stack([citing, cited], axis=1).astype(np.int64)[order]
    return PatentDataset(patents=patents, citations=citations, seed=seed)
