"""Columnar HCBF state: every word's hierarchy as flat NumPy arrays.

The scalar :class:`~repro.filters.hcbf_word.HCBFWord` stores one word's
popcount hierarchy as arbitrary-precision Python ints — legible and
exact, but a batch update touches thousands of tiny objects.  This
module stores the *same information* columnarly across all ``l`` words:

* ``counts[w, pos]`` — the counter value at first-level position
  ``pos`` of word ``w``.  The unary hierarchy is uniquely determined by
  these counters: level ``j ≥ 1`` has one slot per position with
  ``count ≥ j`` (in ascending position order — popcount child indexing
  preserves position order level by level) and the slot's bit is set
  iff ``count ≥ j + 1``.  :meth:`word_level_state` /
  :meth:`set_word_level_state` are the exact bijection.
* ``hist[w, j]`` — the size of level ``j`` (``#{pos: counts ≥ j}``),
  i.e. ``HCBFWord._sizes[j]``.  Traversal-bandwidth accounting only
  ever reads level sizes (``Σ log2 |v_j|``), so the paper's hash-bit
  numbers are computed from ``hist`` without materialising any bitmap.
* ``used[w]`` — hierarchy bits consumed (``Σ_pos counts``), checked
  against the ``w − b1`` budget exactly like ``HCBFWord.bits_free``.
* ``mirror``/``overlay``/``sat_mask`` — packed first-level limbs (the
  array bulk queries gather from), the membership-only overlay of
  saturated words, and which words are saturated.

Batch kernels (:meth:`bulk_insert`, :meth:`bulk_delete`,
:meth:`bulk_count`) sort the (word, position) pairs of a whole batch by
word with one stable ``argsort`` and then apply them in *rounds*: round
``r`` applies the ``r``-th pair of every word's group.  Within a round
each word appears at most once, so plain fancy indexing is safe, and
the number of rounds is bounded by the per-word hierarchy budget
(``w − b1``, e.g. ≤ 24 for the paper's w=64 geometry) because a word
cannot legally receive more pairs than it has budget for.  Overflow /
underflow triggers are detected *before* applying a segment (rank-
vs-budget comparisons on the sorted pairs), and the single triggering
key is replayed through an exact scalar routine so error identity,
saturation order and partial-application semantics match the scalar
path bit for bit.  Tests drive both backends through randomized
interleavings and assert identical observable state.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import CounterUnderflowError, WordOverflowError

__all__ = ["KernelOutcome", "ColumnarHCBF"]

#: Array fields shared with worker processes (see repro.kernels.shmem).
SHARED_FIELDS = ("counts", "used", "hist", "mirror", "overlay", "sat_mask")

_U1 = np.uint64(1)


@dataclass
class KernelOutcome:
    """Result of one bulk kernel call.

    ``applied_keys`` counts keys whose mutations took effect (on error,
    the prefix before the failing key — matching the scalar partial-
    application semantics).  ``extra_bits`` is the summed hierarchy
    traversal bandwidth of the applied keys; ``error`` carries the
    exception for the first failing key instead of raising so the
    caller can record statistics with scalar-identical ordering first.
    """

    extra_bits: float = 0.0
    applied_keys: int = 0
    overflow_events: int = 0
    skipped_deletes: int = 0
    error: Exception | None = None


def _group_sorted(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(uniques, group_starts, group_sizes)`` of a sorted 1-D array."""
    n = len(values)
    starts = np.flatnonzero(np.r_[True, values[1:] != values[:-1]])
    sizes = np.diff(np.r_[starts, n])
    return values[starts], starts, sizes


def _int_to_bits(value: int, size: int) -> np.ndarray:
    """Little-endian bit unpack of a Python int into a bool array."""
    if size == 0:
        return np.zeros(0, dtype=bool)
    raw = value.to_bytes((size + 7) // 8, "little")
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
    return bits[:size].astype(bool)


def _bits_to_int(bits: np.ndarray) -> int:
    """Inverse of :func:`_int_to_bits`."""
    if len(bits) == 0:
        return 0
    packed = np.packbits(bits.astype(np.uint8), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def counts_from_levels(sizes: list, levels: list, first_level_bits: int) -> np.ndarray:
    """Decode an ``HCBFWord``'s ``(_sizes, _levels)`` into counter values.

    Level ``j``'s slots are the positions with ``count ≥ j`` in
    ascending position order, so walking the levels and filtering the
    surviving positions by each bitmap reconstructs every counter.
    """
    counts = np.zeros(first_level_bits, dtype=np.int64)
    current = np.flatnonzero(_int_to_bits(levels[0], sizes[0]))
    counts[current] = 1
    for j in range(1, len(levels)):
        bits = _int_to_bits(levels[j], sizes[j])
        current = current[bits[: len(current)]]
        if len(current) == 0:
            break
        counts[current] = j + 1
    return counts


class ColumnarHCBF:
    """All HCBF words of one MPCBF as flat arrays (see module docstring)."""

    def __init__(self, num_words: int, word_bits: int, first_level_bits: int) -> None:
        self.num_words = num_words
        self.word_bits = word_bits
        self.first_level_bits = first_level_bits
        #: Hierarchy bit budget per word, ``w − b1`` (= HCBFWord capacity).
        self.capacity = word_bits - first_level_bits
        self.limbs = -(-first_level_bits // 64)
        counts_dtype = np.uint8 if self.capacity <= 255 else np.int32
        self.counts = np.zeros((num_words, first_level_bits), dtype=counts_dtype)
        self.used = np.zeros(num_words, dtype=np.int64)
        self.hist = np.zeros((num_words, self.capacity + 2), dtype=np.int32)
        self.mirror = np.zeros((num_words, self.limbs), dtype=np.uint64)
        self.overlay = np.zeros((num_words, self.limbs), dtype=np.uint64)
        self.sat_mask = np.zeros(num_words, dtype=bool)
        # log2 lookup over possible level sizes (≤ b1); log2(1) = 0 keeps
        # the table usable without the scalar path's `size > 1` branch.
        self._log2 = np.zeros(first_level_bits + 1, dtype=np.float64)
        self._log2[1:] = np.log2(np.arange(1, first_level_bits + 1, dtype=np.float64))

    # -- introspection ---------------------------------------------------
    @property
    def stored_hash_bits(self) -> int:
        """Total hierarchy bits in use (= Σ counts, = Σ HCBFWord usage)."""
        return int(self.used.sum())

    def saturated_dict(self) -> dict[int, int]:
        """``{word index: overlay bitmap}`` in ascending index order."""
        out: dict[int, int] = {}
        for w in np.flatnonzero(self.sat_mask).tolist():
            out[w] = self._overlay_int(w)
        return out

    def _overlay_int(self, word_index: int) -> int:
        value = 0
        for limb in range(self.limbs):
            value |= int(self.overlay[word_index, limb]) << (64 * limb)
        return value

    def set_saturated(self, mapping: dict[int, int]) -> None:
        """Replace the saturation state; overlay bits fold into the mirror."""
        self.sat_mask[:] = False
        self.overlay[:] = 0
        mask = (1 << 64) - 1
        for word_index, overlay in mapping.items():
            self.sat_mask[word_index] = True
            for limb in range(self.limbs):
                val = np.uint64((overlay >> (64 * limb)) & mask)
                self.overlay[word_index, limb] = val
                self.mirror[word_index, limb] |= val

    # -- scalar helpers (trigger keys, merges, conversions) --------------
    def _overlay_set(self, word_index: int, pos: int) -> None:
        bit = np.uint64(1 << (pos & 63))
        self.overlay[word_index, pos >> 6] |= bit
        self.mirror[word_index, pos >> 6] |= bit

    def _overlay_pairs(self, W: np.ndarray, P: np.ndarray) -> None:
        limb = P >> 6
        bit = _U1 << (P & 63).astype(np.uint64)
        np.bitwise_or.at(self.overlay, (W, limb), bit)
        np.bitwise_or.at(self.mirror, (W, limb), bit)

    def insert_one(self, word_index: int, pos: int) -> float:
        """Apply one hash insertion; returns its traversal bits.

        The caller must have verified budget (``used < capacity``) —
        mirrors ``HCBFWord.insert_bit`` after its overflow check.
        """
        c = int(self.counts[word_index, pos])
        bits = 0.0
        if c:
            hist = self.hist[word_index]
            for j in range(1, c + 1):
                size = int(hist[j])
                if size > 1:
                    bits += math.log2(size)
        self.counts[word_index, pos] = c + 1
        self.hist[word_index, c + 1] += 1
        self.used[word_index] += 1
        if c == 0:
            self.mirror[word_index, pos >> 6] |= np.uint64(1 << (pos & 63))
        return bits

    def delete_one(self, word_index: int, pos: int) -> float:
        """Apply one hash deletion; returns its traversal bits."""
        c = int(self.counts[word_index, pos])
        bits = 0.0
        if c > 1:
            hist = self.hist[word_index]
            for j in range(1, c):
                size = int(hist[j])
                if size > 1:
                    bits += math.log2(size)
        self.counts[word_index, pos] = c - 1
        self.hist[word_index, c] -= 1
        self.used[word_index] -= 1
        if c == 1:
            self.mirror[word_index, pos >> 6] &= ~np.uint64(1 << (pos & 63))
        return bits

    def _key_groups(
        self, word_row: np.ndarray, off_row: np.ndarray, word_cols: np.ndarray
    ) -> list[tuple[int, list[int]]]:
        """One key's ``(word, offsets)`` groups in hash-group order."""
        bounds = np.searchsorted(word_cols, np.arange(len(word_row) + 1))
        offs = off_row.tolist()
        return [
            (int(word_row[col]), offs[bounds[col] : bounds[col + 1]])
            for col in range(len(word_row))
        ]

    def _insert_key_scalar(
        self,
        word_row: np.ndarray,
        off_row: np.ndarray,
        word_cols: np.ndarray,
        policy: str,
    ) -> tuple[int, float]:
        """Exact replica of the scalar ``MPCBF._apply_insert`` for one key.

        Returns ``(overflow_events, extra_bits)``; raises
        :class:`WordOverflowError` under the ``raise`` policy with the
        same word chosen by the same first-touch demand order.
        """
        groups = self._key_groups(word_row, off_row, word_cols)
        demand: dict[int, int] = {}
        for word_index, offsets in groups:
            demand[word_index] = demand.get(word_index, 0) + len(offsets)
        for word_index, need in demand.items():
            if self.sat_mask[word_index]:
                continue
            if self.capacity - int(self.used[word_index]) < need:
                if policy == "raise":
                    raise WordOverflowError(word_index, self.capacity)
                self.sat_mask[word_index] = True
        events = 0
        extra = 0.0
        for word_index, offsets in groups:
            if self.sat_mask[word_index]:
                for pos in offsets:
                    self._overlay_set(word_index, pos)
                    events += 1
            else:
                for pos in offsets:
                    extra += self.insert_one(word_index, pos)
        return events, extra

    def _underflow_error(
        self, word_row: np.ndarray, off_row: np.ndarray, word_cols: np.ndarray
    ) -> CounterUnderflowError:
        """Rebuild the exact error the scalar validation would raise."""
        groups = self._key_groups(word_row, off_row, word_cols)
        demand: dict[tuple[int, int], int] = {}
        for word_index, offsets in groups:
            if self.sat_mask[word_index]:
                continue
            for pos in offsets:
                demand[(word_index, pos)] = demand.get((word_index, pos), 0) + 1
        for (word_index, pos), need in demand.items():
            if int(self.counts[word_index, pos]) < need:
                return CounterUnderflowError(pos)
        raise AssertionError("bulk_delete flagged a key the scalar path accepts")

    # -- vectorised pair application -------------------------------------
    def _apply_pairs_insert(self, W: np.ndarray, P: np.ndarray) -> float:
        """Apply (word, pos) insert pairs known to fit their budgets.

        Rounds over the per-word pair groups: pair ``r`` of every word
        applies together, so each word's pairs land in original order
        (stable sort) against exactly the hist/counts state the scalar
        path would have seen.
        """
        order = np.argsort(W, kind="stable")
        Ws = W[order]
        Ps = P[order]
        uniq, starts, sizes = _group_sorted(Ws)
        log2tab = self._log2
        extra = 0.0
        for r in range(int(sizes.max())):
            sel = sizes > r
            A = uniq[sel]
            p = Ps[starts[sel] + r]
            c = self.counts[A, p].astype(np.int64)
            cmax = int(c.max())
            if cmax > 0:
                # Traversal charges Σ_{j=1..c} log2(hist[j]) with the
                # pre-insert sizes; a cumsum over the hist slice gives
                # every pair its own prefix in one pass.
                clog = np.cumsum(log2tab[self.hist[A, 1 : cmax + 1]], axis=1)
                deep = c > 0
                extra += float(clog[np.flatnonzero(deep), c[deep] - 1].sum())
            self.counts[A, p] = (c + 1).astype(self.counts.dtype)
            self.hist[A, c + 1] += 1
            fresh = c == 0
            if fresh.any():
                An = A[fresh]
                pn = p[fresh]
                self.mirror[An, pn >> 6] |= _U1 << (pn & 63).astype(np.uint64)
        self.used[uniq] += sizes
        return extra

    def _apply_pairs_delete(self, W: np.ndarray, P: np.ndarray) -> float:
        """Apply (word, pos) delete pairs known not to underflow."""
        order = np.argsort(W, kind="stable")
        Ws = W[order]
        Ps = P[order]
        uniq, starts, sizes = _group_sorted(Ws)
        log2tab = self._log2
        extra = 0.0
        for r in range(int(sizes.max())):
            sel = sizes > r
            A = uniq[sel]
            p = Ps[starts[sel] + r]
            c = self.counts[A, p].astype(np.int64)
            cmax = int(c.max())
            if cmax > 1:
                # Deletes traverse to depth c−1: Σ_{j=1..c−1} log2(hist[j]).
                clog = np.cumsum(log2tab[self.hist[A, 1:cmax]], axis=1)
                deep = c > 1
                extra += float(clog[np.flatnonzero(deep), c[deep] - 2].sum())
            self.hist[A, c] -= 1
            self.counts[A, p] = (c - 1).astype(self.counts.dtype)
            emptied = c == 1
            if emptied.any():
                An = A[emptied]
                pn = p[emptied]
                self.mirror[An, pn >> 6] &= ~(_U1 << (pn & 63).astype(np.uint64))
        self.used[uniq] -= sizes
        return extra

    # -- trigger detection ------------------------------------------------
    def _first_insert_trigger(self, W: np.ndarray) -> int | None:
        """First key whose aggregate demand overflows some word, if any.

        A key fails exactly when one of its pairs has within-word rank
        ``≥`` the word's free budget (rank counts the segment's earlier
        pairs for that word): the rank inequality and the scalar
        ``bits_free < need`` check are equivalent, and the minimum over
        failing keys is the first scalar failure.
        """
        n, k = W.shape
        Wf = W.ravel()
        live = ~self.sat_mask[Wf]
        if not live.any():
            return None
        Wl = Wf[live]
        keys = np.repeat(np.arange(n, dtype=np.int64), k)[live]
        order = np.argsort(Wl, kind="stable")
        Ws = Wl[order]
        _, starts, sizes = _group_sorted(Ws)
        rank = np.arange(len(Ws), dtype=np.int64) - np.repeat(starts, sizes)
        over = rank >= self.capacity - self.used[Ws]
        if not over.any():
            return None
        return int(keys[order][over].min())

    def _first_underflow_key(
        self, W: np.ndarray, P: np.ndarray, keys: np.ndarray
    ) -> int | None:
        """First key deleting more from some counter than it holds."""
        if len(W) == 0:
            return None
        cell = W * np.int64(self.first_level_bits) + P
        order = np.argsort(cell, kind="stable")
        cs = cell[order]
        _, starts, sizes = _group_sorted(cs)
        rank = np.arange(len(cs), dtype=np.int64) - np.repeat(starts, sizes)
        over = rank >= self.counts.reshape(-1)[cs].astype(np.int64)
        if not over.any():
            return None
        return int(keys[order][over].min())

    # -- bulk kernels ------------------------------------------------------
    def bulk_insert(
        self,
        word_idx: np.ndarray,
        offsets: np.ndarray,
        word_cols: np.ndarray,
        policy: str,
    ) -> KernelOutcome:
        """Batch insert of located keys (``(n, g)`` words, ``(n, k)`` offsets).

        Segments between overflow triggers apply wholesale through
        :meth:`_apply_pairs_insert`; each triggering key replays through
        the exact scalar routine so saturation/raise semantics match the
        scalar path (including partial application under ``raise``).
        """
        n = len(offsets)
        W = np.ascontiguousarray(word_idx[:, word_cols])
        out = KernelOutcome()
        start = 0
        while start < n:
            trigger = self._first_insert_trigger(W[start:])
            stop = n if trigger is None else start + trigger
            if stop > start:
                Wf = W[start:stop].ravel()
                Pf = offsets[start:stop].ravel()
                sat = self.sat_mask[Wf]
                if sat.any():
                    self._overlay_pairs(Wf[sat], Pf[sat])
                    out.overflow_events += int(sat.sum())
                    live = ~sat
                    Wf = Wf[live]
                    Pf = Pf[live]
                if len(Wf):
                    out.extra_bits += self._apply_pairs_insert(Wf, Pf)
                out.applied_keys = stop
            if trigger is None:
                out.applied_keys = n
                return out
            try:
                events, extra = self._insert_key_scalar(
                    word_idx[stop], offsets[stop], word_cols, policy
                )
            except WordOverflowError as exc:
                out.error = exc
                return out
            out.overflow_events += events
            out.extra_bits += extra
            out.applied_keys = stop + 1
            start = stop + 1
        return out

    def bulk_delete(
        self,
        word_idx: np.ndarray,
        offsets: np.ndarray,
        word_cols: np.ndarray,
    ) -> KernelOutcome:
        """Batch delete; validates all keys up-front like the scalar path.

        Pairs touching saturated words are skipped (counted in
        ``skipped_deletes``) and excluded from underflow validation,
        exactly as ``MPCBF.delete_encoded`` does per key.
        """
        n = len(offsets)
        k = offsets.shape[1]
        W = np.ascontiguousarray(word_idx[:, word_cols]).ravel()
        P = offsets.ravel()
        keys = np.repeat(np.arange(n, dtype=np.int64), k)
        live = ~self.sat_mask[W]
        fail = self._first_underflow_key(W[live], P[live], keys[live])
        stop = n if fail is None else fail
        out = KernelOutcome()
        if stop > 0:
            cut = stop * k
            live_cut = live[:cut]
            out.skipped_deletes = int(cut - live_cut.sum())
            Wm = W[:cut][live_cut]
            if len(Wm):
                out.extra_bits = self._apply_pairs_delete(Wm, P[:cut][live_cut])
            out.applied_keys = stop
        if fail is not None:
            out.error = self._underflow_error(
                word_idx[fail], offsets[fail], word_cols
            )
        return out

    def bulk_count(
        self,
        word_idx: np.ndarray,
        offsets: np.ndarray,
        word_cols: np.ndarray,
    ) -> np.ndarray:
        """Vectorised multiplicity estimates (min over hashed counters)."""
        W = word_idx[:, word_cols]
        values = self.counts[W, offsets].astype(np.int64)
        shift = (offsets & 63).astype(np.uint64)
        member = (self.overlay[W, offsets >> 6] >> shift) & _U1
        # Overlay bits witness membership, not multiplicity: count ≥ 1.
        values = np.where((values == 0) & (member == _U1), 1, values)
        return values.min(axis=1)

    # -- conversions -------------------------------------------------------
    def word_level_state(self, word_index: int) -> tuple[list[int], list[int]]:
        """One word's canonical ``(sizes, level bitmaps)``.

        Byte-compatible with ``HCBFWord``'s internal representation:
        identical ``_sizes`` and ``_levels`` for the same counters, so
        serialisation round-trips across kernels bit for bit.
        """
        counts = self.counts[word_index].astype(np.int64)
        maxc = int(counts.max(initial=0))
        sizes = [self.first_level_bits]
        levels = [_bits_to_int(counts >= 1)]
        for j in range(1, maxc + 1):
            members = counts[counts >= j]
            sizes.append(int(members.size))
            levels.append(_bits_to_int(members >= j + 1))
        return sizes, levels

    def set_word_level_state(
        self, word_index: int, sizes: list, levels: list
    ) -> None:
        """Load one word from scalar-format level state.

        Only ``counts`` is written; call :meth:`rebuild_derived` once
        after loading every word.
        """
        counts = counts_from_levels(sizes, levels, self.first_level_bits)
        self.counts[word_index] = counts.astype(self.counts.dtype)

    def word_at(self, index: int):
        """Materialise a scalar :class:`HCBFWord` snapshot of one word."""
        from repro.filters.hcbf_word import HCBFWord

        word = HCBFWord(self.word_bits, self.first_level_bits, index=index)
        sizes, levels = self.word_level_state(index)
        word._sizes = sizes
        word._levels = levels
        return word

    def to_words(self) -> list:
        """Materialise scalar :class:`HCBFWord` snapshots of every word."""
        return [self.word_at(i) for i in range(self.num_words)]

    def load_words(self, words: list) -> None:
        """Load counters from scalar words, then rebuild derived arrays."""
        for i, word in enumerate(words):
            self.counts[i] = counts_from_levels(
                word._sizes, word._levels, self.first_level_bits
            ).astype(self.counts.dtype)
        self.rebuild_derived()

    def rebuild_derived(self) -> None:
        """Recompute ``used``/``hist``/``mirror`` from ``counts``."""
        counts = self.counts.astype(np.int64)
        self.used[:] = counts.sum(axis=1)
        self.hist[:] = 0
        for j in range(1, int(counts.max(initial=0)) + 1):
            self.hist[:, j] = (counts >= j).sum(axis=1)
        self.rebuild_mirror_rows(None)

    def rebuild_hist_rows(self, rows: np.ndarray) -> None:
        """Recompute ``hist`` for a subset of words (wholesale merges)."""
        counts = self.counts[rows].astype(np.int64)
        fresh = np.zeros((len(rows), self.hist.shape[1]), dtype=self.hist.dtype)
        for j in range(1, int(counts.max(initial=0)) + 1):
            fresh[:, j] = (counts >= j).sum(axis=1)
        self.hist[rows] = fresh

    def rebuild_mirror_rows(self, rows: np.ndarray | None) -> None:
        """Repack first-level limbs (``counts > 0`` | overlay) for ``rows``."""
        index = slice(None) if rows is None else rows
        bits = (self.counts[index] > 0).astype(np.uint8)
        packed = np.packbits(bits, axis=1, bitorder="little")
        pad = self.limbs * 8 - packed.shape[1]
        if pad:
            packed = np.pad(packed, ((0, 0), (0, pad)))
        limbs = np.ascontiguousarray(packed).view(np.uint64)
        self.mirror[index] = limbs | self.overlay[index]

    # -- process sharing ---------------------------------------------------
    def shareable_arrays(self) -> dict[str, np.ndarray]:
        """The state arrays a process pool must share, by field name."""
        return {name: getattr(self, name) for name in SHARED_FIELDS}

    def rebind(self, arrays: dict[str, np.ndarray]) -> None:
        """Point the state at externally provided arrays (shared memory)."""
        for name in SHARED_FIELDS:
            setattr(self, name, arrays[name])

    # -- validation --------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert columnar self-consistency (tests and debugging)."""
        counts = self.counts.astype(np.int64)
        assert (counts >= 0).all(), "negative counter"
        assert (self.used == counts.sum(axis=1)).all(), "used desync"
        assert (self.used <= self.capacity).all(), "budget exceeded"
        maxc = int(counts.max(initial=0))
        for j in range(1, maxc + 1):
            expect = (counts >= j).sum(axis=1)
            assert (self.hist[:, j] == expect).all(), f"hist desync at level {j}"
        assert (self.hist[:, 0] == 0).all()
        assert (self.hist[:, maxc + 1 :] == 0).all(), "stale hist tail"
        if not self.sat_mask.all():
            assert not self.overlay[~self.sat_mask].any(), (
                "overlay bits on unsaturated word"
            )
        bits = (counts > 0).astype(np.uint8)
        packed = np.packbits(bits, axis=1, bitorder="little")
        pad = self.limbs * 8 - packed.shape[1]
        if pad:
            packed = np.pad(packed, ((0, 0), (0, pad)))
        expect_mirror = np.ascontiguousarray(packed).view(np.uint64) | self.overlay
        assert (self.mirror == expect_mirror).all(), "mirror desync"


class WordsView(Sequence):
    """Lazy read-only sequence of scalar word snapshots.

    ``view[i]`` materialises only word ``i``, so idioms like
    ``filt.words[i].level_sizes()`` inside a loop over all words stay
    O(word) per access instead of rebuilding the whole filter's word
    list each time.  Snapshots are fresh objects — mutating one does
    not write back to the columnar state.
    """

    def __init__(self, columns: ColumnarHCBF) -> None:
        self._columns = columns

    def __len__(self) -> int:
        return self._columns.num_words

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                self._columns.word_at(i)
                for i in range(*index.indices(self._columns.num_words))
            ]
        if index < 0:
            index += self._columns.num_words
        if not 0 <= index < self._columns.num_words:
            raise IndexError(index)
        return self._columns.word_at(index)
