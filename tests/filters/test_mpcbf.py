"""Tests for MPCBF — the paper's contribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    CounterUnderflowError,
    WordOverflowError,
)
from repro.filters.mpcbf import MPCBF


def make(g=1, num_words=512, k=3, capacity=1000, seed=1, **kw) -> MPCBF:
    return MPCBF(num_words, 64, k, g=g, capacity=capacity, seed=seed, **kw)


class TestMPCBFBasics:
    @pytest.mark.parametrize("g", [1, 2, 3])
    def test_cycle(self, g, small_keys):
        f = make(g=g)
        f.insert_many(small_keys)
        assert f.query_many(small_keys).all()
        f.delete_many(small_keys)
        assert not f.query_many(small_keys).any()
        f.check_invariants()

    def test_name(self):
        assert make(g=2).name == "MPCBF-2"

    def test_sizing_from_capacity(self):
        f = make(num_words=512, capacity=1000)
        # n/l ≈ 2 → heuristic n_max small, b1 large.
        assert f.first_level_bits == 64 - f.hashes_per_word * f.n_max
        assert f.first_level_bits >= f.k

    def test_explicit_n_max(self):
        f = MPCBF(64, 64, 3, n_max=5)
        assert f.n_max == 5
        assert f.first_level_bits == 64 - 15

    def test_needs_capacity_or_n_max(self):
        with pytest.raises(ConfigurationError):
            MPCBF(64, 64, 3)

    def test_count_multiplicity(self):
        f = make()
        for _ in range(4):
            f.insert("dup")
        assert f.count("dup") == 4
        f.delete("dup")
        assert f.count("dup") == 3

    def test_g2_splits_hashes(self):
        f = make(g=2, k=3)
        assert f.family.k_per_word == (2, 1)
        assert f.hashes_per_word == 2

    def test_mirror_consistency_through_churn(self, small_keys, rng):
        f = make()
        f.insert_many(small_keys)
        f.check_invariants()
        f.delete_many(small_keys[:100])
        f.check_invariants()
        f.insert_many([f"new-{i}" for i in range(100)])
        f.check_invariants()

    def test_stored_hash_bits(self, small_keys):
        f = make(k=3)
        f.insert_many(small_keys)
        assert f.stored_hash_bits == 3 * len(small_keys)

    def test_wide_first_level(self):
        # word_bits > 64 exercises the multi-limb mirror path.
        f = MPCBF(64, 128, 3, n_max=12)
        assert f.first_level_bits == 128 - 36
        keys = [f"wide-{i}" for i in range(100)]
        f.insert_many(keys)
        assert f.query_many(keys).all()
        f.check_invariants()


class TestMPCBFBulkScalarAgreement:
    @pytest.mark.parametrize("g", [1, 2])
    def test_query(self, g, small_keys, negative_keys):
        f = make(g=g, seed=4)
        f.insert_many(small_keys)
        bulk = f.query_many(negative_keys[:500])
        scalar = np.array([f.query_encoded(int(k)) for k in negative_keys[:500]])
        np.testing.assert_array_equal(bulk, scalar)

    def test_member_queries_agree(self, small_keys):
        f = make(seed=4)
        f.insert_many(small_keys)
        bulk = f.query_many(small_keys)
        scalar = np.array(
            [f.query_encoded(int(k)) for k in f.encoder.encode_many(small_keys)]
        )
        np.testing.assert_array_equal(bulk, scalar)


class TestMPCBFOverflow:
    def test_raise_policy(self):
        # One word, tiny budget: n_max=2 → 6 hierarchy bits at k=3.
        f = MPCBF(1, 64, 3, n_max=2, word_overflow="raise")
        f.insert("a")
        f.insert("b")
        with pytest.raises(WordOverflowError):
            f.insert("c")
        # Failed insert left the filter consistent.
        f.check_invariants()
        assert f.query("a") and f.query("b")

    def test_saturate_policy_keeps_membership(self):
        f = MPCBF(1, 64, 3, n_max=2, word_overflow="saturate")
        keys = [f"s{i}" for i in range(10)]
        for key in keys:
            f.insert(key)
        assert f.overflow_events > 0
        assert all(f.query(k) for k in keys)
        f.check_invariants()

    def test_saturate_policy_skips_deletes(self):
        f = MPCBF(1, 64, 3, n_max=2, word_overflow="saturate")
        for i in range(5):
            f.insert(f"s{i}")
        f.delete("s0")  # word saturated: delete is a recorded no-op
        assert f.skipped_deletes == 3
        assert f.query("s0")  # bits remain set — no false negatives ever

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            MPCBF(1, 64, 3, n_max=2, word_overflow="explode")

    def test_heuristic_avoids_overflow_in_practice(self):
        # The Eq. 11 setting: inserting `capacity` elements should not
        # overflow (this seed/config combination is verified stable).
        f = make(num_words=2048, capacity=4000, word_overflow="raise")
        f.insert_many([f"k{i}" for i in range(4000)])
        f.check_invariants()


class TestMPCBFDeletion:
    def test_delete_absent_raises_and_preserves_state(self, small_keys):
        f = make()
        f.insert_many(small_keys)
        with pytest.raises(CounterUnderflowError):
            f.delete("ghost-key-xyz")
        f.check_invariants()
        assert f.query_many(small_keys).all()

    def test_colliding_keys_survive_deletion(self):
        # Force collisions with a tiny word count.
        f = MPCBF(4, 64, 3, n_max=15, seed=3)
        keys = [f"c{i}" for i in range(15)]
        for key in keys:
            f.insert(key)
        f.delete(keys[0])
        for key in keys[1:]:
            assert f.query(key), f"{key} lost after deleting {keys[0]}"
        f.check_invariants()

    def test_duplicate_key_delete_validates_multiplicity(self):
        f = make()
        f.insert("dup")
        f.insert("dup")
        f.delete("dup")
        f.delete("dup")
        with pytest.raises(CounterUnderflowError):
            f.delete("dup")


class TestMPCBFStats:
    def test_one_access_per_query(self, small_keys):
        f = make(g=1)
        f.insert_many(small_keys)
        f.reset_stats()
        f.query_many(small_keys)
        assert f.stats.query.mean_accesses == pytest.approx(1.0)

    def test_g2_accesses_between_1_and_2(self, small_keys, negative_keys):
        f = make(g=2, num_words=4096, capacity=200)
        f.insert_many(small_keys)
        f.reset_stats()
        f.query_many(negative_keys)
        acc = f.stats.query.mean_accesses
        assert 1.0 <= acc < 1.5  # negatives mostly fail in word 1

    def test_update_bandwidth_exceeds_query_bandwidth(self, small_keys):
        f = make()
        f.insert_many(small_keys)
        f.reset_stats()
        f.query_many(small_keys)
        # Updates traverse the hierarchy; queries read only level 1.
        assert f.stats.insert.mean_bits == 0  # reset cleared them
        f2 = make()
        f2.insert_many(small_keys)
        q_bits_budget = f2._budget_query.total_bits
        assert f2.stats.insert.mean_bits >= q_bits_budget

    def test_fpr_better_than_cbf_at_same_memory(self, rng):
        # The paper's headline: ~an order of magnitude lower FPR.
        from repro.filters.cbf import CountingBloomFilter

        n, memory = 4000, 1 << 19
        members = rng.integers(1, 2**62, size=n).astype(np.uint64)
        negatives = (
            rng.integers(1, 2**62, size=200_000).astype(np.uint64)
            | np.uint64(1 << 63)
        )
        mp = MPCBF(memory // 64, 64, 3, capacity=n, seed=2)
        cbf = CountingBloomFilter(memory // 4, 3, seed=2)
        mp.insert_many(members)
        cbf.insert_many(members)
        fpr_mp = mp.query_many(negatives).mean()
        fpr_cbf = cbf.query_many(negatives).mean()
        assert fpr_mp < fpr_cbf


class TestMPCBFWordCollision:
    def test_delete_validation_when_g_words_collide(self):
        """With g=2 both word hashes can land in one word; deleting a
        key present once must either succeed fully or fail cleanly —
        never apply half its decrements (regression test for the
        cross-group demand aggregation)."""
        # Single word forces the collision deterministically.
        f = MPCBF(1, 256, 4, g=2, n_max=30, seed=1)
        f.insert("victim")
        f.delete("victim")           # clean full-cycle delete
        assert not f.query("victim")
        f.check_invariants()
        # Deleting again must fail atomically with no partial damage.
        f.insert("other")
        before = [f.words[0].count(p) for p in range(f.first_level_bits)]
        with pytest.raises(CounterUnderflowError):
            f.delete("victim")
        after = [f.words[0].count(p) for p in range(f.first_level_bits)]
        assert before == after
        f.check_invariants()
