"""Snapshot CRC trailer: corruption detection + legacy compatibility."""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.errors import ConfigurationError
from repro.filters.factory import FilterSpec, build_filter
from repro.serialize import dump_filter
from repro.service.snapshot import (
    load_snapshot,
    load_snapshot_bytes,
    snapshot_bytes,
    snapshot_wal_seq,
    with_snapshot_seq,
    write_snapshot,
)


def make_filter(seed=2):
    filt = build_filter(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=32 * 8192,
            k=3,
            capacity=2000,
            seed=seed,
            extra={"word_overflow": "saturate"},
        )
    )
    filt.insert_many([b"crc-%d" % i for i in range(500)])
    return filt


class TestCrcTrailer:
    def test_roundtrip_with_trailer(self, tmp_path):
        filt = make_filter()
        path = tmp_path / "f.snap"
        report = write_snapshot(filt, path)
        blob = path.read_bytes()
        assert blob[-8:-4] == b"MPCK"
        (crc,) = struct.unpack("<I", blob[-4:])
        assert crc == zlib.crc32(blob[:-8]) == report["crc32"]
        restored = load_snapshot(path)
        assert all(restored.query_many([b"crc-%d" % i for i in range(500)]))

    def test_corruption_is_detected(self, tmp_path):
        path = tmp_path / "f.snap"
        write_snapshot(make_filter(), path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ConfigurationError, match="CRC mismatch"):
            load_snapshot(path)

    def test_legacy_snapshot_without_trailer_still_loads(self, tmp_path):
        # Dumps written before the trailer existed: raw serialize bytes.
        filt = make_filter()
        path = tmp_path / "legacy.snap"
        path.write_bytes(dump_filter(filt))
        restored = load_snapshot(path)
        assert all(restored.query_many([b"crc-%d" % i for i in range(500)]))

    def test_bad_magic_raises_with_source(self, tmp_path):
        with pytest.raises(ConfigurationError, match="somewhere"):
            load_snapshot_bytes(b"not a snapshot at all", source="somewhere")

    def test_snapshot_bytes_matches_file_contents(self, tmp_path):
        filt = make_filter()
        path = tmp_path / "f.snap"
        write_snapshot(filt, path)
        assert path.read_bytes() == snapshot_bytes(filt)


class TestSeqTrailer:
    """The MPCS trailer: WAL sequence embedded crash-atomically."""

    def test_seq_roundtrip(self):
        filt = make_filter()
        blob = snapshot_bytes(filt, wal_seq=123)
        assert blob[-8:-4] == b"MPCS"
        assert snapshot_wal_seq(blob) == 123
        restored = load_snapshot_bytes(blob)
        assert all(restored.query_many([b"crc-%d" % i for i in range(500)]))

    def test_plain_and_legacy_dumps_carry_no_seq(self):
        filt = make_filter()
        assert snapshot_wal_seq(snapshot_bytes(filt)) is None
        assert snapshot_wal_seq(dump_filter(filt)) is None

    def test_with_snapshot_seq_rewrites_every_trailer_flavour(self):
        filt = make_filter()
        for blob in (
            dump_filter(filt),  # trailer-less legacy dump
            snapshot_bytes(filt),  # plain MPCK trailer
            snapshot_bytes(filt, wal_seq=7),  # already seq-carrying
        ):
            stamped = with_snapshot_seq(blob, 42)
            assert snapshot_wal_seq(stamped) == 42
            restored = load_snapshot_bytes(stamped)
            assert all(
                restored.query_many([b"crc-%d" % i for i in range(500)])
            )

    def test_seq_trailer_corruption_is_detected(self):
        blob = bytearray(snapshot_bytes(make_filter(), wal_seq=9))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(ConfigurationError, match="CRC mismatch"):
            load_snapshot_bytes(bytes(blob))

    def test_corrupted_embedded_seq_is_detected(self):
        # The CRC covers the sequence field itself, so a flipped bit in
        # the recorded seq cannot silently shift the replay start point.
        blob = bytearray(snapshot_bytes(make_filter(), wal_seq=9))
        blob[-12] ^= 0xFF  # inside the u64 wal_seq field
        with pytest.raises(ConfigurationError, match="CRC mismatch"):
            load_snapshot_bytes(bytes(blob))
        with pytest.raises(ConfigurationError, match="CRC mismatch"):
            snapshot_wal_seq(bytes(blob))
