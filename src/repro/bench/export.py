"""Export experiment reports to JSON and Markdown.

``python -m repro.bench`` prints plain text; this module persists the
same reports so results can be archived, diffed across runs, or pasted
into EXPERIMENTS.md.  JSON is loss-free (all rows, notes, and the
paper-claim string); Markdown renders a GitHub table per report.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable

from repro.bench.reporting import ExperimentReport, format_value

__all__ = [
    "report_to_json",
    "report_from_json",
    "report_to_markdown",
    "write_reports",
]


def report_to_json(report: ExperimentReport) -> str:
    """Serialise one report to a JSON string."""
    return json.dumps(asdict(report), indent=2, default=float)


def report_from_json(text: str) -> ExperimentReport:
    """Reconstruct a report serialised by :func:`report_to_json`."""
    data = json.loads(text)
    return ExperimentReport(
        experiment_id=data["experiment_id"],
        title=data["title"],
        rows=data["rows"],
        paper=data.get("paper", ""),
        notes=data.get("notes", []),
        columns=data.get("columns"),
    )


def report_to_markdown(report: ExperimentReport) -> str:
    """Render one report as a Markdown section with a table."""
    lines = [f"### {report.experiment_id}: {report.title}", ""]
    if report.paper:
        lines += [f"> paper: {report.paper}", ""]
    if report.rows:
        cols = report.columns or list(report.rows[0].keys())
        lines.append("| " + " | ".join(cols) + " |")
        lines.append("|" + "|".join("---" for _ in cols) + "|")
        for row in report.rows:
            lines.append(
                "| "
                + " | ".join(format_value(row.get(c, "")) for c in cols)
                + " |"
            )
        lines.append("")
    for note in report.notes:
        lines.append(f"*{note}*")
        lines.append("")
    return "\n".join(lines)


def write_reports(
    reports: Iterable[ExperimentReport],
    directory: str | Path,
    *,
    markdown_name: str = "results.md",
) -> Path:
    """Write per-report JSON files plus one combined Markdown file.

    Returns the Markdown path.  Filenames are
    ``<experiment_id>.json`` inside ``directory`` (created if absent).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sections = []
    for report in reports:
        (directory / f"{report.experiment_id}.json").write_text(
            report_to_json(report)
        )
        sections.append(report_to_markdown(report))
    md_path = directory / markdown_name
    md_path.write_text(
        "# Regenerated experiment results\n\n" + "\n".join(sections)
    )
    return md_path
