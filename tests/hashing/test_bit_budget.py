"""Tests for the access-bandwidth budget primitives."""

from __future__ import annotations

import math

import pytest

from repro.hashing.bit_budget import HashBitBudget, bits_for_range


class TestBitsForRange:
    def test_powers_of_two(self):
        assert bits_for_range(16) == 4.0
        assert bits_for_range(1 << 20) == 20.0

    def test_one(self):
        assert bits_for_range(1) == 0.0

    def test_fractional(self):
        assert bits_for_range(10) == pytest.approx(math.log2(10))

    def test_invalid(self):
        with pytest.raises(ValueError):
            bits_for_range(0)


class TestHashBitBudget:
    def test_flat_matches_paper_fig1(self):
        # Fig. 1: CBF with m=16, k=3 needs 3*log2(16) = 12 bits and 3
        # accesses.
        budget = HashBitBudget.flat(16, 3)
        assert budget.total_bits == 12.0
        assert budget.memory_accesses == 3.0
        assert budget.hash_calls == 3

    def test_partitioned_matches_paper_fig1(self):
        # Fig. 1: PCBF-1 with l=4 words, 4 counters/word, k=3 needs
        # log2(4) + 3*log2(4) = 8 bits and one access.
        budget = HashBitBudget.partitioned(4, 4, 3, 1)
        assert budget.total_bits == 8.0
        assert budget.memory_accesses == 1.0

    def test_hash_calls_model(self):
        # Calibration from §IV.B: CBF k=3 → 3 calls, PCBF-1 → 3,
        # PCBF-2/MPCBF-2 → 4.
        assert HashBitBudget.flat(1 << 20, 3).hash_calls == 3
        assert HashBitBudget.partitioned(1 << 14, 16, 3, 1).hash_calls == 3
        assert HashBitBudget.partitioned(1 << 14, 16, 3, 2).hash_calls == 4

    def test_partitioned_g_scaling(self):
        b1 = HashBitBudget.partitioned(1024, 32, 4, 1)
        b2 = HashBitBudget.partitioned(1024, 32, 4, 2)
        assert b2.word_select_bits == 2 * b1.word_select_bits
        assert b2.offset_bits == b1.offset_bits
        assert b2.memory_accesses == 2.0

    def test_scaled_update_adds_bits_only(self):
        base = HashBitBudget.partitioned(1024, 40, 3, 1)
        upd = base.scaled_update(7.5)
        assert upd.total_bits == pytest.approx(base.total_bits + 7.5)
        assert upd.memory_accesses == base.memory_accesses
        assert upd.hash_calls == base.hash_calls

    def test_frozen(self):
        budget = HashBitBudget.flat(16, 3)
        with pytest.raises(AttributeError):
            budget.offset_bits = 1.0
