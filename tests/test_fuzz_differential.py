"""Differential fuzz: every counting filter vs an exact multiset oracle.

Heavier than the per-filter property tests: thousands of random
operations drawn from realistic distributions (Zipf key popularity,
bursts of deletes), run through every counting variant at once, with
the oracle checked at random checkpoints.  Seeded and parametrised so
failures replay exactly.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.filters.cbf import CountingBloomFilter
from repro.filters.dlcbf import DLeftCBF
from repro.filters.mpcbf import MPCBF
from repro.filters.pcbf import PartitionedCBF
from repro.filters.spectral import SpectralBloomFilter
from repro.filters.vicbf import VariableIncrementCBF


def _make_filters(seed: int):
    return [
        CountingBloomFilter(1 << 14, 3, counter_bits=8, seed=seed),
        CountingBloomFilter(
            1 << 13, 3, counter_bits=8, seed=seed, storage="packed"
        ),
        PartitionedCBF(256, 64, 3, counter_bits=8, seed=seed),
        PartitionedCBF(256, 64, 3, g=2, counter_bits=8, seed=seed),
        MPCBF(256, 256, 3, n_max=70, seed=seed, word_overflow="raise"),
        MPCBF(256, 256, 4, g=2, n_max=80, seed=seed, word_overflow="raise"),
        DLeftCBF(512, d=4, cells_per_bucket=8, counter_bits=8, seed=seed),
        VariableIncrementCBF(1 << 14, 3, counter_bits=16, seed=seed),
        SpectralBloomFilter(1 << 14, 3, counter_bits=16, seed=seed),
    ]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_differential_fuzz(seed):
    rng = np.random.default_rng(seed)
    filters = _make_filters(seed)
    oracle: Counter = Counter()
    universe = 300
    # Zipf-ish popularity so some keys get deep counters.
    ranks = np.arange(1, universe + 1, dtype=float)
    weights = ranks**-1.0
    weights /= weights.sum()

    for step in range(4000):
        key_id = int(rng.choice(universe, p=weights))
        key = f"fuzz-{key_id}"
        # 60% inserts, 40% deletes of a live key (if any).
        if rng.random() < 0.6 or not oracle:
            if oracle[key] >= 25:  # stay far from counter/word limits
                continue
            for filt in filters:
                filt.insert(key)
            oracle[key] += 1
        else:
            live = [k for k, c in oracle.items() if c > 0]
            victim = live[int(rng.integers(0, len(live)))]
            for filt in filters:
                filt.delete(victim)
            oracle[victim] -= 1
            if oracle[victim] == 0:
                del oracle[victim]

        if step % 500 == 499:
            _check(filters, oracle)
    _check(filters, oracle)


def _check(filters, oracle: Counter) -> None:
    live = {k for k, c in oracle.items() if c > 0}
    for filt in filters:
        for key in live:
            assert filt.query(key), f"{filt.name}: false negative on {key}"
            assert filt.count(key) >= oracle[key], (
                f"{filt.name}: undercount on {key}"
            )
        if isinstance(filt, MPCBF):
            filt.check_invariants()


@pytest.mark.parametrize("seed", [7])
def test_fuzz_bulk_and_scalar_interleaved(seed):
    """Mixing bulk and scalar mutations must stay oracle-consistent."""
    rng = np.random.default_rng(seed)
    filters = [
        # 8-bit counters: colliding hot keys can push a shared counter
        # past 4-bit range in this workload.
        CountingBloomFilter(1 << 14, 3, counter_bits=8, seed=seed),
        MPCBF(512, 256, 3, n_max=60, seed=seed),
    ]
    oracle: Counter = Counter()
    for _ in range(30):
        batch = [f"b-{int(i)}" for i in rng.integers(0, 150, size=40)]
        # Cap multiplicity to respect 4-bit CBF counters.
        batch = [k for k in batch if oracle[k] < 12]
        for filt in filters:
            filt.insert_many(batch)
        oracle.update(batch)
        # Scalar deletes of a few live keys.
        live = [k for k, c in oracle.items() if c > 0]
        for victim in live[:5]:
            for filt in filters:
                filt.delete(victim)
            oracle[victim] -= 1
    _check(filters, oracle)
