"""FaultyStorage: torn tails, failed fsyncs, ENOSPC short writes."""

from __future__ import annotations

import errno
import random

import pytest

from repro.chaos import FaultyStorage


class TestWatermarks:
    def test_written_vs_synced_tracking(self, tmp_path):
        storage = FaultyStorage()
        path = tmp_path / "wal.log"
        with storage.open(path, "ab") as handle:
            handle.write(b"A" * 100)
            assert storage.unsynced_bytes() == 100
            storage.fsync(handle)
            assert storage.unsynced_bytes() == 0
            handle.write(b"B" * 50)
            assert storage.unsynced_bytes() == 50

    def test_reopen_append_preserves_offsets(self, tmp_path):
        storage = FaultyStorage()
        path = tmp_path / "wal.log"
        with storage.open(path, "ab") as handle:
            handle.write(b"A" * 10)
            storage.fsync(handle)
        with storage.open(path, "ab") as handle:
            handle.write(b"B" * 10)
        assert storage.unsynced_bytes() == 10


class TestCrash:
    def test_crash_tears_only_the_unsynced_tail(self, tmp_path):
        storage = FaultyStorage()
        path = tmp_path / "wal.log"
        with storage.open(path, "ab") as handle:
            handle.write(b"S" * 100)
            storage.fsync(handle)
            handle.write(b"U" * 60)
        torn = storage.crash(random.Random(7))
        size = path.stat().st_size
        # The cut lands inside [synced, written]; synced bytes survive.
        assert 100 <= size <= 160
        assert path.read_bytes()[:100] == b"S" * 100
        if size < 160:
            assert torn == [(str(path), 160, size)]

    def test_crash_is_seed_deterministic(self, tmp_path):
        sizes = []
        for sub in ("a", "b"):
            storage = FaultyStorage()
            path = tmp_path / sub
            path.mkdir()
            target = path / "wal.log"
            with storage.open(target, "ab") as handle:
                handle.write(b"X" * 1000)
            storage.crash(random.Random(1234))
            sizes.append(target.stat().st_size)
        assert sizes[0] == sizes[1]

    def test_fully_synced_file_survives_crash_intact(self, tmp_path):
        storage = FaultyStorage()
        path = tmp_path / "snap.bin"
        with storage.open(path, "wb") as handle:
            handle.write(b"Z" * 64)
            storage.fsync(handle)
        assert storage.crash(random.Random(3)) == []
        assert path.read_bytes() == b"Z" * 64


class TestInjectedErrors:
    def test_fail_fsyncs_matches_path_and_decrements(self, tmp_path):
        storage = FaultyStorage()
        path = tmp_path / "wal-0001.log"
        storage.fail_fsyncs("wal-", count=2)
        with storage.open(path, "ab") as handle:
            handle.write(b"x")
            for _ in range(2):
                with pytest.raises(OSError) as exc:
                    storage.fsync(handle)
                assert exc.value.errno == errno.EIO
            storage.fsync(handle)  # budget spent; works again
        assert storage.unsynced_bytes() == 0

    def test_fail_next_write_enospc_with_partial_bytes(self, tmp_path):
        storage = FaultyStorage()
        path = tmp_path / "wal.log"
        storage.fail_next_write("wal", partial=3)
        with storage.open(path, "ab") as handle:
            with pytest.raises(OSError) as exc:
                handle.write(b"ABCDEF")
            assert exc.value.errno == errno.ENOSPC
            # The torn half-record made it to disk, as on a real full disk.
            assert path.read_bytes() == b"ABC"
            handle.write(b"GH")  # one-shot: next write succeeds
        assert path.read_bytes() == b"ABCGH"

    def test_unmatched_faults_do_not_fire(self, tmp_path):
        storage = FaultyStorage()
        storage.fail_fsyncs("other-file")
        storage.fail_next_write("other-file")
        path = tmp_path / "wal.log"
        with storage.open(path, "ab") as handle:
            handle.write(b"ok")
            storage.fsync(handle)
        assert path.read_bytes() == b"ok"
