"""A faithful miniature MapReduce engine (Dean & Ghemawat 2004 shape).

The engine reproduces the structure that matters for §V: input splits →
map tasks → hash partitioning → per-partition sort-merge → reduce
tasks, with Hadoop-style counters at every stage.  It is deliberately
in-process and deterministic (no threads): the paper's effect — the
Bloom filter shrinking the shuffle — is entirely about *record counts
and bytes*, which the counters capture exactly; modelled cluster time
comes from :class:`repro.mapreduce.cost.ClusterCostModel`.

Mappers and reducers are plain callables::

    def mapper(record, ctx):          # ctx.emit(key, value)
        ...
    def reducer(key, values, ctx):    # ctx.emit(result)
        ...

Both receive a context exposing the distributed cache and counters.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cost import ClusterCostModel, PhaseCosts

__all__ = [
    "JobCounters",
    "MapContext",
    "ReduceContext",
    "JobResult",
    "LocalMapReduceEngine",
    "MapTaskFailedError",
]


class MapTaskFailedError(RuntimeError):
    """A map task exhausted its attempts; the job is aborted."""

    def __init__(self, attempts: int) -> None:
        super().__init__(f"map task failed after {attempts} attempt(s)")
        self.attempts = attempts


@dataclass
class JobCounters:
    """Hadoop-style named counters, plus the standard framework set."""

    map_input_records: int = 0
    map_output_records: int = 0
    map_output_bytes: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    reduce_input_groups: int = 0
    reduce_input_records: int = 0
    reduce_output_records: int = 0
    custom: dict[str, int] = field(default_factory=dict)

    def increment(self, name: str, amount: int = 1) -> None:
        """Bump a user-defined counter (e.g. ``"join.filtered"``)."""
        self.custom[name] = self.custom.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Read a user-defined counter (0 if never incremented)."""
        return self.custom.get(name, 0)


class MapContext:
    """Per-map-task context handed to the mapper callable."""

    def __init__(
        self,
        counters: JobCounters,
        cache: DistributedCache,
        record_bytes: int,
    ) -> None:
        self.counters = counters
        self.cache = cache
        self._record_bytes = record_bytes
        self._output: list[tuple[object, object]] = []

    def emit(self, key: object, value: object) -> None:
        """Emit one intermediate key-value pair."""
        self._output.append((key, value))
        self.counters.map_output_records += 1
        self.counters.map_output_bytes += self._record_bytes

    def drain(self) -> list[tuple[object, object]]:
        out = self._output
        self._output = []
        return out


class ReduceContext:
    """Per-reduce-task context handed to the reducer callable."""

    def __init__(self, counters: JobCounters, cache: DistributedCache) -> None:
        self.counters = counters
        self.cache = cache
        self._output: list[object] = []

    def emit(self, record: object) -> None:
        """Emit one final output record."""
        self._output.append(record)
        self.counters.reduce_output_records += 1

    def drain(self) -> list[object]:
        out = self._output
        self._output = []
        return out


@dataclass
class JobResult:
    """Everything a job run produced."""

    output: list[object]
    counters: JobCounters
    wall_seconds: float
    modelled: PhaseCosts

    @property
    def modelled_seconds(self) -> float:
        return self.modelled.total_seconds


def _split(records: Sequence, num_splits: int) -> list[Sequence]:
    """Contiguous, even input splits (Hadoop splits by byte ranges)."""
    n = len(records)
    num_splits = max(1, min(num_splits, n)) if n else 1
    bounds = [n * i // num_splits for i in range(num_splits + 1)]
    return [records[bounds[i] : bounds[i + 1]] for i in range(num_splits)]


class LocalMapReduceEngine:
    """Deterministic single-process MapReduce executor.

    Parameters
    ----------
    num_map_tasks / num_reduce_tasks:
        Task parallelism being modelled (affects only split shapes and
        counter attribution, not results — execution is sequential).
    cost_model:
        Cluster model used for the ``modelled`` time in results.
    """

    def __init__(
        self,
        *,
        num_map_tasks: int = 6,
        num_reduce_tasks: int = 3,
        cost_model: ClusterCostModel | None = None,
        max_attempts: int = 1,
    ) -> None:
        if num_map_tasks < 1 or num_reduce_tasks < 1:
            raise ValueError("task counts must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.num_map_tasks = num_map_tasks
        self.num_reduce_tasks = num_reduce_tasks
        self.cost_model = cost_model or ClusterCostModel()
        #: Hadoop-style task retries: a map task whose mapper raises is
        #: re-executed from its split up to this many times; its partial
        #: output is discarded (attempt isolation), exactly like a task
        #: tracker restarting a failed attempt.
        self.max_attempts = max_attempts

    def _run_map_task(
        self,
        split: Sequence,
        mapper: Callable[[object, MapContext], None],
        counters: JobCounters,
        cache: DistributedCache,
    ) -> list[tuple[object, object]]:
        """Execute one map task with attempt isolation and retries."""
        last_error: Exception | None = None
        for attempt in range(self.max_attempts):
            attempt_counters = JobCounters()
            ctx = MapContext(
                attempt_counters, cache, self.cost_model.record_bytes
            )
            try:
                for record in split:
                    attempt_counters.map_input_records += 1
                    mapper(record, ctx)
            except Exception as exc:  # noqa: BLE001 - task attempt boundary
                last_error = exc
                counters.increment("task.failed_attempts")
                continue
            # Commit the successful attempt's counters to the job.
            counters.map_input_records += attempt_counters.map_input_records
            counters.map_output_records += attempt_counters.map_output_records
            counters.map_output_bytes += attempt_counters.map_output_bytes
            for name, value in attempt_counters.custom.items():
                counters.increment(name, value)
            return ctx.drain()
        raise MapTaskFailedError(self.max_attempts) from last_error

    def run(
        self,
        records: Sequence,
        mapper: Callable[[object, MapContext], None],
        reducer: Callable[[object, list, ReduceContext], None],
        *,
        cache: DistributedCache | None = None,
        combiner: Callable[[object, list], Iterable] | None = None,
    ) -> JobResult:
        """Execute one job over ``records``.

        ``combiner``, when given, runs per map task on that task's
        grouped output (the Hadoop map-side combine), shrinking the
        shuffle without changing reduce semantics for associative
        reductions.
        """
        cache = cache or DistributedCache()
        counters = JobCounters()
        t0 = time.perf_counter()

        # -- map phase ------------------------------------------------
        partitions: list[dict[object, list]] = [
            defaultdict(list) for _ in range(self.num_reduce_tasks)
        ]
        for split in _split(records, self.num_map_tasks):
            output = self._run_map_task(split, mapper, counters, cache)
            if combiner is not None:
                grouped: dict[object, list] = defaultdict(list)
                for key, value in output:
                    grouped[key].append(value)
                output = [
                    (key, combined)
                    for key, values in grouped.items()
                    for combined in combiner(key, values)
                ]
            # -- partition + "network" transfer ------------------------
            for key, value in output:
                part = hash(key) % self.num_reduce_tasks
                partitions[part][key].append(value)
                counters.shuffle_records += 1
                counters.shuffle_bytes += self.cost_model.record_bytes

        # -- reduce phase ----------------------------------------------
        output: list[object] = []
        for partition in partitions:
            ctx = ReduceContext(counters, cache)
            # Sort-merge order, as Hadoop presents keys to the reducer.
            for key in sorted(partition, key=repr):
                values = partition[key]
                counters.reduce_input_groups += 1
                counters.reduce_input_records += len(values)
                reducer(key, values, ctx)
            output.extend(ctx.drain())

        wall = time.perf_counter() - t0
        modelled = self.cost_model.job_costs(
            map_input_records=counters.map_input_records,
            map_output_records=counters.map_output_records,
            shuffle_bytes=counters.shuffle_bytes,
            reduce_input_records=counters.reduce_input_records,
            broadcast_bytes=cache.total_bytes,
            filter_probes=counters.get("filter.probes"),
        )
        return JobResult(
            output=output, counters=counters, wall_seconds=wall, modelled=modelled
        )
