"""Hash families: one encoded key → filter indices.

:class:`HashFamily` produces ``k`` indices in a flat range — the layout
used by the standard Bloom filter and CBF.  :class:`PartitionedHashFamily`
produces ``g`` word indices plus ``k`` in-word offsets split across the
words — the layout shared by BF-g, PCBF-g, and MPCBF-g (§III of the
paper).  Both provide a scalar path (reference, used per-operation) and
a vectorised bulk path over ``uint64`` key arrays (the hot loop).

Independent hash functions are synthesised by XOR-ing the encoded key
with per-function SplitMix64-derived seeds and re-mixing, so one encoded
key yields any number of effectively independent 64-bit hashes.  The
family can alternatively run in Kirsch–Mitzenmacher double-hashing mode
(two base hashes, linear combination), which the paper's related work
[22] shows preserves the false positive rate.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.mixers import (
    derive_seeds,
    murmur_fmix64,
    murmur_fmix64_array,
    splitmix64,
    splitmix64_array,
)

__all__ = ["split_k_over_g", "HashFamily", "PartitionedHashFamily"]

HashMode = Literal["independent", "double"]


def split_k_over_g(k: int, g: int) -> tuple[int, ...]:
    """Split ``k`` hash functions over ``g`` words, front-loaded.

    The paper allocates ``ceil(k/g)`` hashes per word and "might assign
    less value to the last word": e.g. k=3, g=2 → (2, 1).

    >>> split_k_over_g(3, 2)
    (2, 1)
    >>> split_k_over_g(5, 3)
    (2, 2, 1)
    """
    if k < 1 or g < 1:
        raise ConfigurationError(f"k and g must be >= 1, got k={k}, g={g}")
    if g > k:
        raise ConfigurationError(f"g={g} words but only k={k} hash functions")
    base = -(-k // g)  # ceil(k / g)
    counts = []
    remaining = k
    for i in range(g):
        take = min(base, remaining - (g - i - 1) * 1)
        take = max(take, 1)
        counts.append(take)
        remaining -= take
    if remaining != 0:
        # Distribute any leftover (only possible when ceil rounding
        # under-allocated due to the min-1 guard); add to earliest words.
        for i in range(g):
            if remaining == 0:
                break
            counts[i] += 1
            remaining -= 1
    return tuple(counts)


class HashFamily:
    """``k`` hash functions mapping encoded keys into ``[0, size)``.

    Parameters
    ----------
    size:
        Size of the index range (``m`` counters or bits).
    k:
        Number of hash functions.
    seed:
        Master seed; all per-function seeds derive from it.
    mode:
        ``"independent"`` (default) synthesises ``k`` independent
        mixes; ``"double"`` uses Kirsch–Mitzenmacher double hashing
        with two base hashes.
    """

    def __init__(
        self,
        size: int,
        k: int,
        *,
        seed: int = 0,
        mode: HashMode = "independent",
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if mode not in ("independent", "double"):
            raise ConfigurationError(f"unknown hash mode: {mode!r}")
        self.size = size
        self.k = k
        self.seed = seed
        self.mode = mode
        self._seeds = derive_seeds(seed, k)
        self._seeds_np = np.array(self._seeds, dtype=np.uint64)

    def __repr__(self) -> str:
        return (
            f"HashFamily(size={self.size}, k={self.k}, seed={self.seed}, "
            f"mode={self.mode!r})"
        )

    def indices(self, encoded_key: int) -> list[int]:
        """Return the ``k`` indices for one encoded key (scalar path)."""
        if self.mode == "double":
            h1 = splitmix64(encoded_key ^ self._seeds[0])
            h2 = murmur_fmix64(encoded_key ^ self._seeds[-1]) | 1
            return [((h1 + i * h2) % (1 << 64)) % self.size for i in range(self.k)]
        return [
            splitmix64(encoded_key ^ s) % self.size for s in self._seeds
        ]

    def indices_array(self, encoded_keys: np.ndarray) -> np.ndarray:
        """Return an ``(n, k)`` index matrix for a bulk key array."""
        keys = np.asarray(encoded_keys, dtype=np.uint64)
        if self.mode == "double":
            with np.errstate(over="ignore"):
                h1 = splitmix64_array(keys ^ self._seeds_np[0])
                h2 = murmur_fmix64_array(keys ^ self._seeds_np[-1]) | np.uint64(1)
                steps = np.arange(self.k, dtype=np.uint64)
                combined = h1[:, None] + steps[None, :] * h2[:, None]
            return (combined % np.uint64(self.size)).astype(np.int64)
        with np.errstate(over="ignore"):
            mixed = splitmix64_array(keys[:, None] ^ self._seeds_np[None, :])
        return (mixed % np.uint64(self.size)).astype(np.int64)


class PartitionedHashFamily:
    """Word-select plus in-word offset hashing for partitioned filters.

    Produces, for each key, ``g`` distinct-seeded word indices in
    ``[0, num_words)`` and ``k`` offsets in ``[0, offset_range)`` that
    are split over the ``g`` words according to
    :func:`split_k_over_g` (columns ``0..k0`` of the offset matrix
    belong to word 0, and so on — the split is static, mirroring the
    paper's allocation).

    Note the ``g`` selected words are *independent* hashes and may
    collide (two hash groups landing in the same word); the paper's
    analysis makes the same assumption.

    The first word index shares a hash computation with the first
    offset: one 64-bit mix supplies the offset from its value modulo
    the offset range and the word index from its upper bits.  This is
    what makes the total hash-computation count ``k + g − 1`` — the
    paper's explanation of why CBF, PCBF-1 and MPCBF-1 all perform
    three hash calculations at ``k = 3`` (§IV.B, Fig. 8 discussion).
    """

    def __init__(
        self,
        num_words: int,
        offset_range: int,
        k: int,
        *,
        g: int = 1,
        seed: int = 0,
    ) -> None:
        if num_words < 1:
            raise ConfigurationError(f"num_words must be >= 1, got {num_words}")
        if offset_range < 1:
            raise ConfigurationError(
                f"offset_range must be >= 1, got {offset_range}"
            )
        self.num_words = num_words
        self.offset_range = offset_range
        self.k = k
        self.g = g
        self.seed = seed
        self.k_per_word = split_k_over_g(k, g)
        # Words 1..g-1 get their own seeds; word 0 reuses the first
        # offset hash's upper bits (see class docstring).
        all_seeds = derive_seeds(seed, g - 1 + k)
        self._word_seeds = all_seeds[: g - 1]
        self._offset_seeds = all_seeds[g - 1 :]
        self._word_seeds_np = np.array(self._word_seeds, dtype=np.uint64)
        self._offset_seeds_np = np.array(self._offset_seeds, dtype=np.uint64)

    def __repr__(self) -> str:
        return (
            f"PartitionedHashFamily(num_words={self.num_words}, "
            f"offset_range={self.offset_range}, k={self.k}, g={self.g}, "
            f"seed={self.seed})"
        )

    def word_indices(self, encoded_key: int) -> list[int]:
        """Return the ``g`` word indices for one key."""
        first_mix = splitmix64(encoded_key ^ self._offset_seeds[0])
        words = [(first_mix >> 32) % self.num_words]
        words.extend(
            splitmix64(encoded_key ^ s) % self.num_words
            for s in self._word_seeds
        )
        return words

    def offsets(self, encoded_key: int) -> list[int]:
        """Return the flat ``k`` in-word offsets for one key."""
        return [
            splitmix64(encoded_key ^ s) % self.offset_range
            for s in self._offset_seeds
        ]

    def grouped_offsets(self, encoded_key: int) -> list[list[int]]:
        """Return offsets grouped per word: ``g`` lists summing to k."""
        flat = self.offsets(encoded_key)
        groups: list[list[int]] = []
        start = 0
        for count in self.k_per_word:
            groups.append(flat[start : start + count])
            start += count
        return groups

    def locate_array(
        self, encoded_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bulk word indices and offsets with the shared first hash.

        Returns ``(word_idx, offsets)`` of shapes ``(n, g)`` and
        ``(n, k)`` computed with exactly ``k + g − 1`` mixes per key —
        the hot path every partitioned filter's bulk operations use.
        """
        keys = np.asarray(encoded_keys, dtype=np.uint64)
        with np.errstate(over="ignore"):
            offset_mixed = splitmix64_array(
                keys[:, None] ^ self._offset_seeds_np[None, :]
            )
            offsets = (offset_mixed % np.uint64(self.offset_range)).astype(
                np.int64
            )
            word0 = (
                (offset_mixed[:, 0] >> np.uint64(32))
                % np.uint64(self.num_words)
            ).astype(np.int64)
            if self.g == 1:
                word_idx = word0[:, None]
            else:
                rest = splitmix64_array(
                    keys[:, None] ^ self._word_seeds_np[None, :]
                )
                rest_idx = (rest % np.uint64(self.num_words)).astype(np.int64)
                word_idx = np.concatenate([word0[:, None], rest_idx], axis=1)
        return word_idx, offsets

    def word_indices_array(self, encoded_keys: np.ndarray) -> np.ndarray:
        """Return an ``(n, g)`` word-index matrix for a bulk key array."""
        return self.locate_array(encoded_keys)[0]

    def offsets_array(self, encoded_keys: np.ndarray) -> np.ndarray:
        """Return an ``(n, k)`` offset matrix for a bulk key array."""
        return self.locate_array(encoded_keys)[1]

    def offset_word_columns(self) -> np.ndarray:
        """Map each offset column to its word column (length ``k``).

        ``offset_word_columns()[j]`` is the column of the word-index
        matrix that offset column ``j`` belongs to; used by bulk filter
        paths to expand offsets to absolute positions without a Python
        loop.
        """
        cols = np.empty(self.k, dtype=np.int64)
        start = 0
        for word_col, count in enumerate(self.k_per_word):
            cols[start : start + count] = word_col
            start += count
        return cols
