"""Versioned ring topologies and the durable epoch log.

The cluster's answer to the paper's fixed-geometry partitions: the word
layout inside one filter never changes, but the *node* layout must — so
every topology the cluster has ever served is a :class:`RingEpoch`, a
monotonically versioned, CRC-stamped description of the shard groups
and their vnode count.  Epoch ``v`` fully determines a
:class:`~repro.cluster.router.HashRing`, so any two parties holding the
same epoch bytes route every key identically — the property epoch
fencing relies on.

Durability mirrors the snapshot trailer idiom: the payload is canonical
JSON followed by the ``MPEP`` magic and a CRC32 over everything before
the checksum field, so a torn or corrupted epoch file fails loudly at
load time.  The :class:`EpochLog` is a directory of such files next to
the coordinator's state; appending epoch ``v+1`` is the *commit point*
of a rebalance plan — a crash before the append resumes the migration,
a crash after it merely re-delivers the (idempotent) commit messages.

:func:`compute_moves` diffs two epochs into the minimal set of arc
moves.  Ownership is piecewise-constant between points of the union of
both rings (``lookup`` is ``bisect_right``, so a point owns the arc
*ending* at it, half-open ``[prev, point)``); sampling each union arc
at its start yields exactly the ranges whose owner changes.  For a
join, every arc that moves is claimed by the newcomer — the
minimal-disruption property the ring tests pin down.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.cluster.router import HashRing, NodeAddress, ShardGroup
from repro.errors import ClusterError, ConfigurationError

__all__ = [
    "RingEpoch",
    "EpochLog",
    "KeyRange",
    "KeyRangeSet",
    "Move",
    "compute_moves",
    "hash_key",
]

#: Epoch trailer magic: payload | b"MPEP" | u32 crc32(payload + magic).
_EPOCH_MAGIC = b"MPEP"
_TRAILER = struct.Struct("<4sI")
_RING_SPACE = 2**64


def hash_key(key) -> int:
    """A key's 64-bit ring position (the router's BLAKE2b point hash).

    Accepts raw ``bytes`` or a pre-encoded ``uint64`` (the columnar
    fastpath).  An integer hashes as its 8-byte little-endian packing,
    so a packed migration key (``MIG_*64`` records) and its integer
    form always agree on ring position.
    """
    from repro.cluster.router import _hash64

    if not isinstance(key, (bytes, bytearray, memoryview)):
        key = struct.pack("<Q", int(key))
    return _hash64(bytes(key))


def _node_to_json(node: NodeAddress) -> list:
    return [node.host, node.port, node.health_port]


def _node_from_json(raw) -> NodeAddress:
    host, port, health_port = raw
    return NodeAddress(
        host=str(host),
        port=int(port),
        health_port=None if health_port is None else int(health_port),
    )


@dataclass(frozen=True)
class RingEpoch:
    """One immutable, versioned cluster topology."""

    version: int
    vnodes: int
    groups: tuple[ShardGroup, ...]

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ConfigurationError(
                f"epoch versions start at 1, got {self.version}"
            )

    def ring(self) -> HashRing:
        """The hash ring this epoch describes (cached per instance)."""
        ring = self.__dict__.get("_ring")
        if ring is None:
            ring = HashRing(list(self.groups), vnodes=self.vnodes)
            object.__setattr__(self, "_ring", ring)
        return ring

    def group(self, name: str) -> ShardGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise ClusterError(f"epoch v{self.version} has no group {name!r}")

    def group_names(self) -> list[str]:
        return [group.name for group in self.groups]

    # -- derived topologies ---------------------------------------------
    def with_group(self, group: ShardGroup) -> "RingEpoch":
        """The next epoch after ``group`` joins the ring."""
        if any(existing.name == group.name for existing in self.groups):
            raise ConfigurationError(
                f"group {group.name!r} is already in epoch v{self.version}"
            )
        return RingEpoch(
            version=self.version + 1,
            vnodes=self.vnodes,
            groups=(*self.groups, group),
        )

    def without_group(self, name: str) -> "RingEpoch":
        """The next epoch after group ``name`` drains out of the ring."""
        remaining = tuple(g for g in self.groups if g.name != name)
        if len(remaining) == len(self.groups):
            raise ClusterError(f"epoch v{self.version} has no group {name!r}")
        if not remaining:
            raise ConfigurationError(
                "cannot drain the last group out of the ring"
            )
        return RingEpoch(
            version=self.version + 1, vnodes=self.vnodes, groups=remaining
        )

    # -- serialisation ---------------------------------------------------
    def to_bytes(self) -> bytes:
        """Canonical JSON + ``MPEP`` CRC trailer (see module docstring)."""
        payload = json.dumps(
            {
                "version": self.version,
                "vnodes": self.vnodes,
                "groups": [
                    {
                        "name": group.name,
                        "nodes": [_node_to_json(n) for n in group.nodes],
                    }
                    for group in self.groups
                ],
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        head = payload + _EPOCH_MAGIC
        return head + struct.pack("<I", zlib.crc32(head))

    @classmethod
    def from_bytes(cls, blob: bytes, *, source: str = "epoch") -> "RingEpoch":
        if len(blob) < _TRAILER.size:
            raise ConfigurationError(f"{source}: epoch blob is truncated")
        magic, crc = _TRAILER.unpack_from(blob, len(blob) - _TRAILER.size)
        if magic != _EPOCH_MAGIC:
            raise ConfigurationError(f"{source}: not a ring epoch (bad magic)")
        if zlib.crc32(blob[:-4]) != crc:
            raise ConfigurationError(
                f"{source}: epoch CRC mismatch (corrupted or torn write)"
            )
        try:
            doc = json.loads(blob[: -_TRAILER.size].decode("utf-8"))
            groups = tuple(
                ShardGroup(
                    name=str(raw["name"]),
                    primary=_node_from_json(raw["nodes"][0]),
                    replicas=tuple(
                        _node_from_json(n) for n in raw["nodes"][1:]
                    ),
                )
                for raw in doc["groups"]
            )
            return cls(
                version=int(doc["version"]),
                vnodes=int(doc["vnodes"]),
                groups=groups,
            )
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"{source}: malformed epoch payload: {exc}"
            ) from exc

    def describe(self) -> dict:
        return {
            "version": self.version,
            "vnodes": self.vnodes,
            "groups": {
                group.name: {
                    "primary": group.primary.address,
                    "replicas": [n.address for n in group.replicas],
                }
                for group in self.groups
            },
        }


class EpochLog:
    """Append-only directory of epoch files — the plan commit record.

    One file per version (``epoch-00000007.bin``), each written with
    the crash-safe tmp/fsync/rename/dir-fsync dance.  Appending is the
    atomic commit of a topology change: :meth:`contains` is how a
    resumed coordinator decides whether a crashed plan already
    committed (deliver the commits again) or not (resume streaming).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, version: int) -> Path:
        return self.directory / f"epoch-{version:08d}.bin"

    def versions(self) -> list[int]:
        return sorted(
            int(path.stem.split("-")[1])
            for path in self.directory.glob("epoch-*.bin")
        )

    def contains(self, version: int) -> bool:
        return self._path(version).exists()

    def load(self, version: int) -> RingEpoch:
        path = self._path(version)
        if not path.exists():
            raise ClusterError(f"epoch log has no version {version}")
        epoch = RingEpoch.from_bytes(path.read_bytes(), source=str(path))
        if epoch.version != version:
            raise ConfigurationError(
                f"{path}: file names version {version} but payload says "
                f"v{epoch.version}"
            )
        return epoch

    def latest(self) -> RingEpoch | None:
        versions = self.versions()
        if not versions:
            return None
        return self.load(versions[-1])

    def append(self, epoch: RingEpoch) -> Path:
        """Durably record ``epoch``; idempotent for identical bytes."""
        from repro.service.snapshot import _write_bytes_atomic

        path = self._path(epoch.version)
        blob = epoch.to_bytes()
        if path.exists():
            if path.read_bytes() == blob:
                return path  # resumed plan re-committing: fine
            raise ClusterError(
                f"epoch v{epoch.version} already recorded with different "
                f"topology — refusing to overwrite history"
            )
        _write_bytes_atomic(blob, path)
        return path


@dataclass(frozen=True)
class KeyRange:
    """A half-open arc ``[start, end)`` of the 64-bit ring.

    ``start > end`` encodes the wrap through zero; ``start == end``
    covers the whole ring (a single-arc degenerate only seen with one
    union point).
    """

    start: int
    end: int

    def contains(self, position: int) -> bool:
        if self.start < self.end:
            return self.start <= position < self.end
        if self.start > self.end:
            return position >= self.start or position < self.end
        return True

    def span(self) -> int:
        """Arc length in hash units (full ring when start == end)."""
        return ((self.end - self.start) % _RING_SPACE) or _RING_SPACE

    def describe(self) -> dict:
        return {"start": self.start, "end": self.end}


class KeyRangeSet:
    """A set of arcs with membership tests over key hashes."""

    def __init__(self, ranges) -> None:
        self.ranges = tuple(ranges)

    def contains(self, position: int) -> bool:
        return any(r.contains(position) for r in self.ranges)

    def contains_key(self, key: bytes) -> bool:
        return self.contains(hash_key(key))

    def span(self) -> int:
        return sum(r.span() for r in self.ranges)

    def __len__(self) -> int:
        return len(self.ranges)

    def __iter__(self):
        return iter(self.ranges)

    def describe(self) -> list[dict]:
        return [r.describe() for r in self.ranges]

    @classmethod
    def from_json(cls, raw: list) -> "KeyRangeSet":
        return cls(
            KeyRange(start=int(r["start"]), end=int(r["end"])) for r in raw
        )


@dataclass(frozen=True)
class Move:
    """One arc changing hands between two epochs."""

    #: The new-ring point (vnode position) that owns the arc after the
    #: change — the unit the plan's state machine tracks.
    vnode: int
    range: KeyRange
    src: str
    dst: str

    def describe(self) -> dict:
        return {
            "vnode": self.vnode,
            "range": self.range.describe(),
            "src": self.src,
            "dst": self.dst,
        }


def compute_moves(old: RingEpoch, new: RingEpoch) -> list[Move]:
    """Arcs whose owner differs between ``old`` and ``new``.

    Walks the union of both rings' points; between consecutive union
    points neither ring changes owner, so one sample per arc suffices.
    """
    old_ring, new_ring = old.ring(), new.ring()
    union = sorted(set(old_ring.points()) | set(new_ring.points()))
    moves: list[Move] = []
    for index, start in enumerate(union):
        end = union[(index + 1) % len(union)]
        src = old_ring.owner_at(start)
        dst = new_ring.owner_at(start)
        if src != dst:
            moves.append(
                Move(
                    vnode=new_ring.vnode_at(start),
                    range=KeyRange(start=start, end=end),
                    src=src,
                    dst=dst,
                )
            )
    return moves
