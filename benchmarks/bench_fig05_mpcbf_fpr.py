"""Fig. 5 — analytic FPR of CBF vs MPCBF-1/MPCBF-2 (k=3).

Regenerates the rows of the paper's fig05 via
:func:`repro.bench.experiments.fig05` and prints them.  See
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import experiments


def test_fig05(benchmark, scale, capsys):
    report = run_once(benchmark, experiments.fig05, scale)
    with capsys.disabled():
        print()
        print(report.render())
    assert report.rows
